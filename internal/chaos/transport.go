package chaos

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/dsmon"
)

// Transport wraps any comm.Transport with a seeded schedule of per-message
// transient faults: drops, duplicated / delayed / reordered deliveries, and
// injected send/receive errors. Each sending and receiving rank draws from
// its own deterministic PRNG stream derived from the schedule seed, so a
// seed fully determines which operations fault (though not the goroutine
// interleaving around them). All faults are transient — the endpoints'
// sequence numbers and retry budgets are expected to absorb them — and
// every injection is counted under chaos_comm_inject_total{kind=…}.
type Transport struct {
	inner comm.Transport
	rates Rates

	sendLanes []*lane // indexed by sender rank
	recvLanes []*lane // indexed by receiver rank

	inj commInjects
}

// lane is one rank's fault state: its PRNG stream plus (for send lanes)
// the reorder hold slot.
type lane struct {
	mu   sync.Mutex
	rng  *rand.Rand
	held *comm.Message // a reordered message awaiting release
	fuse *time.Timer
}

// commInjects caches the per-kind injection counters.
type commInjects struct {
	drop, sendErr, dup, delay, reorder, recvErr *dsmon.Counter
}

func newCommInjects(mon *dsmon.Monitor) commInjects {
	reg := mon.Registry()
	k := func(kind string) *dsmon.Counter {
		return reg.Counter("chaos_comm_inject_total",
			"transport faults injected by the chaos layer", "kind", kind)
	}
	return commInjects{
		drop: k("drop"), sendErr: k("send_err"), dup: k("duplicate"),
		delay: k("delay"), reorder: k("reorder"), recvErr: k("recv_err"),
	}
}

// NewTransport wraps inner for a machine of size ranks under the given
// schedule seed and rates. mon may be nil (injections go uncounted).
func NewTransport(inner comm.Transport, size int, seed int64, rates Rates, mon *dsmon.Monitor) *Transport {
	t := &Transport{
		inner:     inner,
		rates:     rates,
		sendLanes: make([]*lane, size),
		recvLanes: make([]*lane, size),
		inj:       newCommInjects(mon),
	}
	for i := 0; i < size; i++ {
		t.sendLanes[i] = &lane{rng: rand.New(rand.NewPCG(mix(uint64(seed), uint64(i)+1), 0x5e17d))}
		t.recvLanes[i] = &lane{rng: rand.New(rand.NewPCG(mix(uint64(seed), uint64(size+i)+1), 0x12ec7))}
	}
	return t
}

// copyMsg returns m with its payload copied, so a delivery deferred past
// Send's return cannot observe the caller reusing its buffer.
func copyMsg(m comm.Message) comm.Message {
	if m.Data != nil {
		d := make([]byte, len(m.Data))
		copy(d, m.Data)
		m.Data = d
	}
	return m
}

// Send implements comm.Transport, injecting at most one fault per message.
func (t *Transport) Send(m comm.Message) error {
	if m.From < 0 || m.From >= len(t.sendLanes) {
		return t.inner.Send(m) // let the inner transport report the bad rank
	}
	ln := t.sendLanes[m.From]
	ln.mu.Lock()
	r := ln.rng.Float64()
	rt := t.rates

	switch {
	case r < rt.Drop:
		// Detected loss: nothing is delivered; the sender hears about it.
		held := ln.takeHeld()
		ln.mu.Unlock()
		t.flush(held)
		t.inj.drop.Inc()
		return fmt.Errorf("%w: chaos dropped message %d→%d tag %#x", comm.ErrTransient, m.From, m.To, m.Tag)

	case r < rt.Drop+rt.SendErr:
		// The message arrives but the sender is told it failed, so its
		// retry will manufacture a duplicate for the receiver to suppress.
		held := ln.takeHeld()
		ln.mu.Unlock()
		if err := t.inner.Send(m); err != nil {
			t.flush(held)
			return err
		}
		t.flush(held)
		t.inj.sendErr.Inc()
		return fmt.Errorf("%w: chaos send error %d→%d tag %#x (message delivered)", comm.ErrTransient, m.From, m.To, m.Tag)

	case r < rt.Drop+rt.SendErr+rt.Duplicate:
		held := ln.takeHeld()
		ln.mu.Unlock()
		if err := t.inner.Send(m); err != nil {
			t.flush(held)
			return err
		}
		t.inj.dup.Inc()
		t.inner.Send(copyMsg(m)) // best-effort second copy
		t.flush(held)
		return nil

	case r < rt.Drop+rt.SendErr+rt.Duplicate+rt.Delay:
		// Deliver late from a background goroutine. The sender believes the
		// message is in flight (it is), so no error.
		d := time.Duration(1 + ln.rng.Int64N(int64(maxDur(rt.MaxDelay))))
		held := ln.takeHeld()
		ln.mu.Unlock()
		t.flush(held)
		t.inj.delay.Inc()
		cp := copyMsg(m)
		time.AfterFunc(d, func() { t.inner.Send(cp) })
		return nil

	case r < rt.Drop+rt.SendErr+rt.Duplicate+rt.Delay+rt.Reorder:
		// Hold this message; the lane's next send releases it afterwards,
		// swapping wire order. A fuse timer bounds the hold in real time so
		// a lane that never sends again cannot starve its receiver.
		prev := ln.takeHeld()
		cp := copyMsg(m)
		ln.held = &cp
		ln.fuse = time.AfterFunc(maxDur(rt.ReorderFuse), func() {
			ln.mu.Lock()
			late := ln.takeHeld()
			ln.mu.Unlock()
			t.flush(late)
		})
		ln.mu.Unlock()
		t.flush(prev)
		t.inj.reorder.Inc()
		return nil

	default:
		held := ln.takeHeld()
		ln.mu.Unlock()
		if err := t.inner.Send(m); err != nil {
			t.flush(held)
			return err
		}
		t.flush(held)
		return nil
	}
}

// takeHeld detaches the lane's held message (if any) and stops its fuse.
// Callers hold ln.mu.
func (ln *lane) takeHeld() *comm.Message {
	h := ln.held
	ln.held = nil
	if ln.fuse != nil {
		ln.fuse.Stop()
		ln.fuse = nil
	}
	return h
}

// flush delivers a previously held message, best-effort: by the time a
// reordered message is released the run may already be tearing down, and a
// closed transport just means nobody is left to care.
func (t *Transport) flush(h *comm.Message) {
	if h != nil {
		t.inner.Send(*h)
	}
}

// recvFault draws the receive-side fault decision for rank to.
func (t *Transport) recvFault(to, from int, tag uint64) error {
	if to < 0 || to >= len(t.recvLanes) {
		return nil
	}
	ln := t.recvLanes[to]
	ln.mu.Lock()
	fault := ln.rng.Float64() < t.rates.RecvErr
	ln.mu.Unlock()
	if !fault {
		return nil
	}
	t.inj.recvErr.Inc()
	return fmt.Errorf("%w: chaos receive error on rank %d (from %d tag %#x)", comm.ErrTransient, to, from, tag)
}

// Recv implements comm.Transport.
func (t *Transport) Recv(to, from int, tag uint64) (comm.Message, error) {
	if err := t.recvFault(to, from, tag); err != nil {
		return comm.Message{}, err
	}
	return t.inner.Recv(to, from, tag)
}

// RecvWithin implements comm.DeadlineRecver when the wrapped transport
// does; otherwise it degrades to an unbounded Recv.
func (t *Transport) RecvWithin(to, from int, tag uint64, timeout time.Duration) (comm.Message, error) {
	if err := t.recvFault(to, from, tag); err != nil {
		return comm.Message{}, err
	}
	if dr, ok := t.inner.(comm.DeadlineRecver); ok {
		return dr.RecvWithin(to, from, tag, timeout)
	}
	return t.inner.Recv(to, from, tag)
}

// Close implements comm.Transport. Held and in-flight delayed messages are
// abandoned; the run is over.
func (t *Transport) Close() error {
	for _, ln := range t.sendLanes {
		ln.mu.Lock()
		ln.takeHeld()
		ln.mu.Unlock()
	}
	return t.inner.Close()
}

// maxDur clamps a configured duration to at least one millisecond so a
// zero-valued Rates cannot produce a zero-length timer interval.
func maxDur(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Millisecond
	}
	return d
}
