package chaos

import (
	"testing"
	"time"

	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

// TestSendRecvFlowUnderFaults pins the msg causal edge's exactly-once
// contract under retransmission and duplication: with drops forcing sender
// retries, send-errors forcing retries that duplicate on the wire, and
// outright duplicated deliveries, every application-level message must still
// produce exactly one Send→Recv edge — no doubled arrows from duplicates,
// no dangling halves from retries.
func TestSendRecvFlowUnderFaults(t *testing.T) {
	for _, seed := range []int64{3, 17, 2026} {
		rates := Rates{
			Drop: 0.10, SendErr: 0.15, Duplicate: 0.25, RecvErr: 0.10,
			MaxDelay: time.Millisecond, ReorderFuse: time.Millisecond,
		}
		mon := dsmon.NewTracing()
		tr := NewTransport(comm.NewChanTransport(2), 2, seed, rates, mon)
		var c0, c1 vtime.Clock
		e0 := comm.NewEndpoint(0, 2, tr, &c0, vtime.Challenge()).SetMonitor(mon)
		e1 := comm.NewEndpoint(1, 2, tr, &c1, vtime.Challenge()).SetMonitor(mon)
		// The fault rates here are far above DefaultRates; widen the retry
		// budget so no send exhausts it (which would orphan the receiver).
		policy := comm.RetryPolicy{MaxAttempts: 30, Backoff: 1e-6}
		e0.SetRetryPolicy(policy)
		e1.SetRetryPolicy(policy)

		const n = 200
		errc := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				if err := e0.Send(1, 7, []byte{byte(i)}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
		for i := 0; i < n; i++ {
			data, err := e1.Recv(0, 7)
			if err != nil {
				t.Fatalf("seed %d: Recv %d: %v", seed, i, err)
			}
			if data[0] != byte(i) {
				t.Fatalf("seed %d: message %d out of order: got %d", seed, i, data[0])
			}
		}
		if err := <-errc; err != nil {
			t.Fatalf("seed %d: Send: %v", seed, err)
		}
		tr.Close()

		rec := mon.Recorder()
		flows := rec.Flows()
		if len(flows) != n {
			t.Fatalf("seed %d: %d messages produced %d msg edges, want exactly %d",
				seed, n, len(flows), n)
		}
		byID := map[trace.SpanID]trace.Event{}
		for _, ev := range rec.Events() {
			if ev.ID != 0 {
				byID[ev.ID] = ev
			}
		}
		sinks := map[trace.SpanID]bool{}
		for _, f := range flows {
			if f.Kind != "msg" {
				t.Fatalf("seed %d: unexpected edge kind %q", seed, f.Kind)
			}
			from, okF := byID[f.From]
			to, okT := byID[f.To]
			if !okF || !okT {
				t.Fatalf("seed %d: dangling edge %v", seed, f)
			}
			if from.Name != "Send" || from.Node != 0 || to.Name != "Recv" || to.Node != 1 {
				t.Fatalf("seed %d: edge %v connects %q@%d → %q@%d, want Send@0 → Recv@1",
					seed, f, from.Name, from.Node, to.Name, to.Node)
			}
			if sinks[f.To] {
				t.Fatalf("seed %d: receive span %d has two incoming msg edges", seed, f.To)
			}
			sinks[f.To] = true
		}
	}
}
