package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sync"

	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/pfs"
)

// Backend wraps any pfs.Backend with seeded transient storage faults:
// outright read/write errors and short transfers, all wrapping
// pfs.ErrTransient so the file system's retry layer absorbs them. The wrap
// order matters: a chaos Backend sits *under* the file system's resilient
// layer (it wraps the raw store inside the factory), whereas the permanent
// pfs.FaultyBackend wraps *outside* it, so only chaos faults are retried.
type Backend struct {
	inner pfs.Backend
	rates Rates

	mu  sync.Mutex
	rng *rand.Rand

	inj pfsInjects
}

// pfsInjects caches the per-kind injection counters.
type pfsInjects struct {
	readErr, writeErr, shortRead, shortWrite *dsmon.Counter
}

func newPFSInjects(mon *dsmon.Monitor) pfsInjects {
	reg := mon.Registry()
	k := func(kind string) *dsmon.Counter {
		return reg.Counter("chaos_pfs_inject_total",
			"storage faults injected by the chaos layer", "kind", kind)
	}
	return pfsInjects{
		readErr: k("read_err"), writeErr: k("write_err"),
		shortRead: k("short_read"), shortWrite: k("short_write"),
	}
}

// NewBackend wraps inner under the given schedule seed and rates. mon may
// be nil (injections go uncounted).
func NewBackend(inner pfs.Backend, seed int64, rates Rates, mon *dsmon.Monitor) *Backend {
	return &Backend{
		inner: inner,
		rates: rates,
		rng:   rand.New(rand.NewPCG(mix(uint64(seed), 0xd15c), 0xbac7e)),
		inj:   newPFSInjects(mon),
	}
}

// WrapFactory returns a factory whose backends are chaos-wrapped, each file
// drawing from its own PRNG stream derived from the schedule seed and the
// file name (so open order does not change the schedule).
func WrapFactory(factory pfs.BackendFactory, seed int64, rates Rates, mon *dsmon.Monitor) pfs.BackendFactory {
	return func(name string) (pfs.Backend, error) {
		b, err := factory(name)
		if err != nil {
			return nil, err
		}
		h := fnv.New64a()
		h.Write([]byte(name))
		return NewBackend(b, seed^int64(h.Sum64()), rates, mon), nil
	}
}

// StripedChaosFactory returns a factory producing striped backends whose k
// children are each chaos-wrapped memory stores with independent PRNG
// streams (derived from the schedule seed, the file name, and the child
// index), so the stripe's concurrent fan-out faces faults on every leg
// *under* the stripe — each child failing on its own schedule, with the
// file system's resilient layer retrying the whole multi-child operation
// above. mon may be nil.
func StripedChaosFactory(k int, unit int64, seed int64, rates Rates, mon *dsmon.Monitor) pfs.BackendFactory {
	return func(name string) (pfs.Backend, error) {
		h := fnv.New64a()
		h.Write([]byte(name))
		base := seed ^ int64(h.Sum64())
		children := make([]pfs.Backend, k)
		for i := range children {
			children[i] = NewBackend(pfs.NewMemBackend(), base+int64(i)*0x9e3779b9, rates, mon)
		}
		return pfs.NewStripedBackend(children, unit)
	}
}

// fault draws one uniform sample and maps it to (errFault, shortFault) for
// an operation on n bytes; cut is the prefix length of a short transfer.
func (b *Backend) fault(errRate, shortRate float64, n int) (errFault bool, cut int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.rng.Float64()
	if r < errRate {
		return true, 0
	}
	if r < errRate+shortRate && n > 1 {
		return false, 1 + b.rng.IntN(n-1)
	}
	return false, 0
}

// ReadAt implements io.ReaderAt with injected transient faults.
func (b *Backend) ReadAt(p []byte, off int64) (int, error) {
	errFault, cut := b.fault(b.rates.ReadErr, b.rates.ShortRead, len(p))
	if errFault {
		b.inj.readErr.Inc()
		return 0, fmt.Errorf("%w: chaos read error at %d", pfs.ErrTransient, off)
	}
	if cut > 0 {
		n, err := b.inner.ReadAt(p[:cut], off)
		if err != nil {
			return n, err // a real error (e.g. EOF) outranks the injection
		}
		b.inj.shortRead.Inc()
		return n, fmt.Errorf("%w: chaos short read %d of %d at %d", pfs.ErrTransient, n, len(p), off)
	}
	return b.inner.ReadAt(p, off)
}

// WriteAt implements io.WriterAt with injected transient faults.
func (b *Backend) WriteAt(p []byte, off int64) (int, error) {
	errFault, cut := b.fault(b.rates.WriteErr, b.rates.ShortWrite, len(p))
	if errFault {
		b.inj.writeErr.Inc()
		return 0, fmt.Errorf("%w: chaos write error at %d", pfs.ErrTransient, off)
	}
	if cut > 0 {
		n, err := b.inner.WriteAt(p[:cut], off)
		if err != nil {
			return n, err
		}
		b.inj.shortWrite.Inc()
		return n, fmt.Errorf("%w: chaos short write %d of %d at %d", pfs.ErrTransient, n, len(p), off)
	}
	return b.inner.WriteAt(p, off)
}

// Size implements pfs.Backend.
func (b *Backend) Size() int64 { return b.inner.Size() }

// Truncate implements pfs.Backend (no faults: truncate is metadata, and the
// stack's truncate paths have no retry story to exercise).
func (b *Backend) Truncate(size int64) error { return b.inner.Truncate(size) }

// Close implements pfs.Backend.
func (b *Backend) Close() error { return b.inner.Close() }
