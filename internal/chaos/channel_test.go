package chaos

import (
	"testing"
)

// TestChannelReferenceDeterministic: the fault-free file path is a fixed
// point — two reference runs produce identical consumed-bytes digests, so
// the channel oracle's cross-path comparison is meaningful.
func TestChannelReferenceDeterministic(t *testing.T) {
	a, err := ChannelReference(ChannelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChannelReference(ChannelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("reference digests empty")
	}
	for i := range a {
		if a[i] != b[i] || a[i] == 0 {
			t.Fatalf("reference digests not deterministic/nonzero: %x vs %x", a, b)
		}
	}
}

// TestChaosPipeline is the channel-oracle campaign: the M→N stream-to-stream
// pipeline under -chaos.n seeded transport fault schedules, each with a
// seeded mid-stream consumer stall that pushes the producers into the credit
// window. Every seed must end with the pipeline's consumed bytes identical
// to what the fault-free write-then-read file path delivers, or a clean
// error on every rank; hangs and silent corruption fail the suite. The
// asymmetric 3→2 shape keeps per-pair redistribution and the uneven-rank
// paths under fire too.
func TestChaosPipeline(t *testing.T) {
	rep, err := RunChannelSeeds(ChannelConfig{Producers: 3, Consumers: 2}, *chaosSeed, *chaosN)
	if err != nil {
		t.Fatal(err)
	}
	reportFailures(t, rep)
	for _, k := range commKinds {
		if rep.Injects["comm:"+k] == 0 {
			t.Errorf("no seed injected comm fault %q — campaign does not cover the fault space", k)
		}
	}
	if rep.OK == 0 {
		t.Error("no channel seed completed successfully — default rates should mostly be survivable")
	}
	t.Logf("injections: %v", rep.Injects)
}
