package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

// Config describes one oracle pipeline: an SCF collection written through a
// d/stream under chaos and read back (with a different distribution, so the
// read side's redistribution traffic is also exposed to the fault schedule).
type Config struct {
	// NProcs is the machine size (default 4).
	NProcs int
	// Segments is the SCF collection length (default 2·NProcs+1, so block
	// and cyclic layouts disagree and at least one rank is uneven).
	Segments int
	// Particles per segment (default 16).
	Particles int
	// Records is how many insert+write rounds the writer performs
	// (default 2).
	Records int
	// Transport selects the underlying transport (chan by default).
	Transport machine.TransportKind
	// Fanout, when >= 2, shards the funnel collectives onto a k-ary tree
	// (machine.Config.Fanout) — the configuration large-rank cells run, so
	// the sharded trees face the fault schedule too.
	Fanout int
	// Strategy selects the d/stream collective data path for both the write
	// and read sides of the pipeline (StrategyAuto by default), so the
	// two-phase shuffle/scatter traffic is exposed to the fault schedule
	// like every other path.
	Strategy dstream.Strategy
	// ReadAhead enables the input stream's prefetch pipeline at the given
	// depth (0 = synchronous reads), exposing the background refills and
	// their abandon-on-failure paths to the fault schedule.
	ReadAhead int
	// StripeFactor stripes the chaotic store over this many fault-injected
	// child backends (0 = one flat backend), so the concurrent fan-out
	// faces faults on every leg. StripeUnit is the cell size (default 4096
	// when striped).
	StripeFactor int
	StripeUnit   int64
	// Rates is the fault schedule (DefaultRates() when zero — detected by
	// an all-zero struct).
	Rates Rates
	// PlanSigs, when non-nil, receives each rank's plan-decision-chain
	// signatures as the pipeline passes the write and read stages. Only
	// meaningful when the cost-model planner is active (full-auto streams);
	// the planner oracle uses it to assert every rank planned the identical
	// chain even when faults skewed the cost observations mid-stream.
	PlanSigs *PlanSignatures
	// Watchdog bounds one seed's real run time; exceeding it is the
	// forbidden outcome, OutcomeHang (default 60s).
	Watchdog time.Duration
	// RecvDeadline bounds each blocking receive in real time (default 5s);
	// with the endpoint retry budget it is the in-stack hang backstop, one
	// level below the watchdog.
	RecvDeadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.NProcs <= 0 {
		c.NProcs = 4
	}
	if c.Segments <= 0 {
		c.Segments = 2*c.NProcs + 1
	}
	if c.Particles <= 0 {
		c.Particles = 16
	}
	if c.Records <= 0 {
		c.Records = 2
	}
	if c.Rates == (Rates{}) {
		c.Rates = DefaultRates()
	}
	if c.StripeFactor > 0 && c.StripeUnit <= 0 {
		c.StripeUnit = 4096
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 60 * time.Second
	}
	if c.RecvDeadline <= 0 {
		c.RecvDeadline = 5 * time.Second
	}
	return c
}

// Outcome classifies one seeded run against the resilience trichotomy.
type Outcome int

const (
	// OutcomeOK: the pipeline completed and every byte — the file image and
	// every extracted segment — matched the fault-free reference.
	OutcomeOK Outcome = iota
	// OutcomeCleanError: the pipeline failed, but with an error on every
	// rank (machine.Run returned; nobody hung) and no corruption was
	// observed. Permitted: retry budgets are finite.
	OutcomeCleanError
	// OutcomeCorrupt: the pipeline "succeeded" but produced wrong bytes —
	// the failure mode the d/stream transparency guarantee forbids.
	OutcomeCorrupt
	// OutcomeHang: the pipeline outlived the watchdog — the other
	// forbidden failure mode.
	OutcomeHang
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeCleanError:
		return "clean-error"
	case OutcomeCorrupt:
		return "CORRUPT"
	case OutcomeHang:
		return "HANG"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// errCorrupt marks in-band corruption detected by the pipeline body (an
// extracted segment differing from what was written).
var errCorrupt = errors.New("chaos: extracted data differs from inserted data")

// PlanSignatures collects per-rank planner decision-chain hashes from one
// pipeline run. Slices are indexed by rank and each rank writes only its own
// slot, so the SPMD body needs no locking; read them only after machine.Run
// returns.
type PlanSignatures struct {
	Write []uint64
	Read  []uint64
}

// NewPlanSignatures sizes a collector for an nprocs-rank pipeline.
func NewPlanSignatures(nprocs int) *PlanSignatures {
	return &PlanSignatures{Write: make([]uint64, nprocs), Read: make([]uint64, nprocs)}
}

// Agree returns nil when every rank recorded the same nonzero signature on
// both stream directions — the planner made byte-for-byte identical decision
// chains everywhere, so every re-plan happened on the same record boundary
// on every rank. Call it only for runs that completed successfully; a run
// that failed mid-record legitimately leaves ranks at different points.
func (ps *PlanSignatures) Agree() error {
	check := func(side string, sigs []uint64) error {
		for r, s := range sigs {
			if s == 0 {
				return fmt.Errorf("chaos: rank %d recorded no %s-side plan signature — planner inactive?", r, side)
			}
			if s != sigs[0] {
				return fmt.Errorf("chaos: %s-side plan chains diverged: rank 0 %016x, rank %d %016x",
					side, sigs[0], r, s)
			}
		}
		return nil
	}
	if err := check("write", ps.Write); err != nil {
		return err
	}
	return check("read", ps.Read)
}

const harnessFile = "chaos-scf"

// pipeline is the SPMD body of one oracle run: fill an SCF collection
// (cyclic layout), write Records records through an output d/stream, read
// them back on a block layout (forcing redistribution), and verify every
// extracted segment against the deterministic fill.
func pipeline(cfg Config) func(*machine.Node) error {
	return func(n *machine.Node) error {
		dw, err := distr.New(cfg.Segments, cfg.NProcs, distr.Cyclic, 0)
		if err != nil {
			return err
		}
		src, err := collection.New[scf.Segment](n, dw)
		if err != nil {
			return err
		}
		src.Apply(func(g int, s *scf.Segment) { s.Fill(g, cfg.Particles) })

		out, err := dstream.Open(n, dw, harnessFile, dstream.WithStrategy(cfg.Strategy))
		if err != nil {
			return err
		}
		for rec := 0; rec < cfg.Records; rec++ {
			if err := dstream.Insert[scf.Segment](out, src); err != nil {
				return err
			}
			if err := out.Write(); err != nil {
				return err
			}
		}
		if cfg.PlanSigs != nil {
			cfg.PlanSigs.Write[n.Rank()] = out.PlanSignature()
		}
		if err := out.Close(); err != nil {
			return err
		}

		dr, err := distr.New(cfg.Segments, cfg.NProcs, distr.Block, 0)
		if err != nil {
			return err
		}
		back, err := collection.New[scf.Segment](n, dr)
		if err != nil {
			return err
		}
		iopts := []dstream.Option{dstream.WithStrategy(cfg.Strategy)}
		if cfg.ReadAhead > 0 {
			iopts = append(iopts, dstream.WithReadAhead(cfg.ReadAhead))
		}
		in, err := dstream.OpenInput(n, dr, harnessFile, iopts...)
		if err != nil {
			return err
		}
		for rec := 0; rec < cfg.Records; rec++ {
			if err := in.Read(); err != nil {
				return err
			}
			if err := dstream.Extract[scf.Segment](in, back); err != nil {
				return err
			}
			var bad error
			back.Apply(func(g int, s *scf.Segment) {
				var want scf.Segment
				want.Fill(g, cfg.Particles)
				if !s.Equal(&want) && bad == nil {
					bad = fmt.Errorf("%w: record %d global %d on rank %d", errCorrupt, rec, g, n.Rank())
				}
			})
			if bad != nil {
				return bad
			}
		}
		if cfg.PlanSigs != nil {
			cfg.PlanSigs.Read[n.Rank()] = in.PlanSignature()
		}
		return in.Close()
	}
}

// Reference runs the pipeline fault-free and returns the resulting file
// image — the byte-identity baseline every chaotic run is compared to. It
// errors if the fault-free pipeline itself fails (a broken stack, not a
// chaos finding).
func Reference(cfg Config) ([]byte, error) {
	cfg = cfg.withDefaults()
	fs := pfs.NewMemFS(vtime.Paragon())
	_, err := machine.Run(machine.Config{
		NProcs:    cfg.NProcs,
		Profile:   vtime.Paragon(),
		Transport: cfg.Transport,
		Fanout:    cfg.Fanout,
		FS:        fs,
	}, pipeline(cfg))
	if err != nil {
		return nil, fmt.Errorf("chaos: fault-free reference run failed: %w", err)
	}
	return fs.Image(harnessFile)
}

// SeedResult is one seeded schedule's verdict.
type SeedResult struct {
	Seed    int64
	Outcome Outcome
	// Err is the pipeline error for OutcomeCleanError / OutcomeCorrupt.
	Err error
	// Injects maps "comm:<kind>" and "pfs:<kind>" to the number of faults
	// the schedule actually injected.
	Injects map[string]int64
}

var commKinds = []string{"drop", "send_err", "duplicate", "delay", "reorder", "recv_err"}
var pfsKinds = []string{"read_err", "write_err", "short_read", "short_write"}

// injectCounts reads the chaos injection counters back out of the run's
// registry (get-or-create returns the same handles the injectors bumped).
func injectCounts(mon *dsmon.Monitor) map[string]int64 {
	reg := mon.Registry()
	out := make(map[string]int64, len(commKinds)+len(pfsKinds))
	for _, k := range commKinds {
		out["comm:"+k] = reg.Counter("chaos_comm_inject_total",
			"transport faults injected by the chaos layer", "kind", k).Value()
	}
	for _, k := range pfsKinds {
		out["pfs:"+k] = reg.Counter("chaos_pfs_inject_total",
			"storage faults injected by the chaos layer", "kind", k).Value()
	}
	return out
}

// RunSeed executes the pipeline under one seeded fault schedule and
// classifies the outcome against refImage (from Reference). On OutcomeHang
// the run's goroutines are abandoned — callers should treat a hang as
// fatal, not continue a long campaign around leaked machinery.
func RunSeed(cfg Config, seed int64, refImage []byte) SeedResult {
	cfg = cfg.withDefaults()
	mon := dsmon.New()
	factory := WrapFactory(pfs.MemFactory(), seed, cfg.Rates, mon)
	if cfg.StripeFactor > 0 {
		factory = StripedChaosFactory(cfg.StripeFactor, cfg.StripeUnit, seed, cfg.Rates, mon)
	}
	fs := pfs.NewFileSystem(vtime.Paragon(), factory)

	res := SeedResult{Seed: seed}
	done := make(chan error, 1)
	go func() {
		_, err := machine.Run(machine.Config{
			NProcs:    cfg.NProcs,
			Profile:   vtime.Paragon(),
			Transport: cfg.Transport,
			Fanout:    cfg.Fanout,
			FS:        fs,
			Monitor:   mon,
			WrapTransport: func(tr comm.Transport) comm.Transport {
				return NewTransport(tr, cfg.NProcs, seed, cfg.Rates, mon)
			},
			RecvDeadline: cfg.RecvDeadline,
		}, pipeline(cfg))
		done <- err
	}()

	var err error
	select {
	case err = <-done:
	case <-time.After(cfg.Watchdog):
		res.Outcome = OutcomeHang
		res.Err = fmt.Errorf("chaos: seed %d outlived the %v watchdog", seed, cfg.Watchdog)
		res.Injects = injectCounts(mon)
		return res
	}
	res.Injects = injectCounts(mon)

	switch {
	case err == nil:
		img, ierr := fs.Image(harnessFile)
		if ierr != nil {
			res.Outcome = OutcomeCleanError
			res.Err = ierr
		} else if !bytes.Equal(img, refImage) {
			res.Outcome = OutcomeCorrupt
			res.Err = fmt.Errorf("chaos: seed %d file image differs from fault-free reference (%d vs %d bytes)",
				seed, len(img), len(refImage))
		} else {
			res.Outcome = OutcomeOK
		}
	case errors.Is(err, errCorrupt):
		res.Outcome = OutcomeCorrupt
		res.Err = err
	default:
		res.Outcome = OutcomeCleanError
		res.Err = err
	}
	return res
}

// Report aggregates a seed campaign.
type Report struct {
	Results                             []SeedResult
	OK, CleanErrors, Corruptions, Hangs int
	// Injects sums each fault kind's injections over the whole campaign.
	Injects map[string]int64
}

// Add folds one seed's result into the report.
func (r *Report) Add(sr SeedResult) {
	r.Results = append(r.Results, sr)
	switch sr.Outcome {
	case OutcomeOK:
		r.OK++
	case OutcomeCleanError:
		r.CleanErrors++
	case OutcomeCorrupt:
		r.Corruptions++
	case OutcomeHang:
		r.Hangs++
	}
	if r.Injects == nil {
		r.Injects = make(map[string]int64)
	}
	for k, v := range sr.Injects {
		r.Injects[k] += v
	}
}

// RunSeeds runs seeds [first, first+n) and aggregates the verdicts. It
// stops early on the first hang (the machinery behind a hang is leaked, so
// continuing would stack leaks).
func RunSeeds(cfg Config, first int64, n int) (Report, error) {
	cfg = cfg.withDefaults()
	ref, err := Reference(cfg)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	for i := 0; i < n; i++ {
		sr := RunSeed(cfg, first+int64(i), ref)
		rep.Add(sr)
		if sr.Outcome == OutcomeHang {
			break
		}
	}
	return rep, nil
}
