package chaos

import (
	"testing"
	"time"
)

// reportTenantFailures logs every non-OK tenant verdict and fails the test
// on any forbidden outcome (hang or corruption — corruption includes reading
// another tenant's bytes, which cannot reproduce the tenant's seeded fill).
// Clean errors are permitted: reconnect and retry budgets are finite.
func reportTenantFailures(t *testing.T, rep TenantsReport) {
	t.Helper()
	for _, sr := range rep.Results {
		if sr.Worst == OutcomeOK {
			continue
		}
		for i, o := range sr.Outcomes {
			if o != OutcomeOK {
				var err error
				if sr.Errs != nil {
					err = sr.Errs[i]
				}
				t.Logf("seed %d tenant %d: %s: %v", sr.Seed, i, o, err)
			}
		}
	}
	t.Logf("campaign: %d ok, %d clean errors, %d corruptions, %d hangs over %d seeds (%d all-OK); %d connection cuts",
		rep.OK, rep.CleanErrors, rep.Corruptions, rep.Hangs, len(rep.Results), rep.SeedsAllOK, rep.Disconnects)
	if rep.Hangs != 0 {
		t.Fatalf("%d tenant run(s) hung — the daemon lost progress under faults and disconnects", rep.Hangs)
	}
	if rep.Corruptions != 0 {
		t.Fatalf("%d tenant run(s) read corrupt or foreign bytes", rep.Corruptions)
	}
}

// TestTenantChaosOracle is the multi-tenant acceptance campaign: at least
// three tenant programs concurrently write and read streams through one
// dstreamd whose storage and transports run seeded fault schedules, while a
// chopper severs every client connection at seeded moments mid-run. All
// tenants share one file NAME, so namespace isolation is verified in-band:
// every byte a tenant reads must reproduce its own seeded fill, which
// another tenant's bytes cannot. Each tenant ends byte-identical to its
// fault-free reference or with a clean error; a hang or a cross-tenant leak
// fails the suite.
func TestTenantChaosOracle(t *testing.T) {
	// Multi-tenant seeds pay for a real TCP daemon plus three machines, so
	// the campaign runs half the flat oracle's seed count — but never below
	// the 100-seed acceptance floor.
	n := *chaosN / 2
	if n < 100 {
		n = 100
	}
	if testing.Short() {
		n = 20
	}
	rep, err := RunTenantsSeeds(TenantsConfig{}, *chaosSeed, n)
	if err != nil {
		t.Fatal(err)
	}
	reportTenantFailures(t, rep)
	if rep.SeedsAllOK == 0 {
		t.Error("no seed completed with every tenant OK — default rates should mostly be survivable")
	}
	if rep.Disconnects == 0 {
		t.Error("the chopper never landed a connection cut — reconnect path untested")
	}
	// The campaign must provably have exercised both fault planes: storage
	// faults under the daemon and transport faults inside tenant machines.
	for _, k := range pfsKinds {
		if rep.Injects["pfs:"+k] == 0 {
			t.Errorf("no seed injected pfs fault %q under the daemon", k)
		}
	}
	var comm int64
	for _, k := range commKinds {
		comm += rep.Injects["comm:"+k]
	}
	if comm == 0 {
		t.Error("no seed injected any transport fault inside a tenant machine")
	}
	t.Logf("injections: %v", rep.Injects)
}

// TestTenantChaosDisconnectStorm cranks the chopper: many seeded cuts per
// run against sessions with a tight reconnect budget. Most runs may fail —
// but every failure must be clean, on every rank of every tenant; a session
// that hangs waiting for a connection that will never resume fails here.
func TestTenantChaosDisconnectStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("disconnect storm skipped in -short mode")
	}
	rep, err := RunTenantsSeeds(TenantsConfig{
		Disconnects:     12,
		ReconnectBudget: 2 * time.Second,
	}, *chaosSeed, 25)
	if err != nil {
		t.Fatal(err)
	}
	reportTenantFailures(t, rep)
	if rep.Disconnects == 0 {
		t.Error("storm campaign landed no connection cuts")
	}
}

// TestTenantsReferenceDistinct: the per-tenant fault-free references are
// pairwise distinct — the precondition for the shared-file-name isolation
// oracle. If two tenants' references coincided, a cross-tenant leak between
// them would be invisible.
func TestTenantsReferenceDistinct(t *testing.T) {
	refs, err := TenantsReference(TenantsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		if len(refs[i]) == 0 {
			t.Fatalf("tenant %d reference image is empty", i)
		}
		for j := i + 1; j < len(refs); j++ {
			if string(refs[i]) == string(refs[j]) {
				t.Fatalf("tenants %d and %d have identical reference images — isolation oracle is blind", i, j)
			}
		}
	}
}
