package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/vtime"
)

// drainInjects snapshots every chaos counter of a monitor.
func drainInjects(mon *dsmon.Monitor) map[string]int64 {
	return injectCounts(mon)
}

// TestTransportDeterministicSchedule: the same seed over the same
// single-goroutine send sequence injects exactly the same faults.
func TestTransportDeterministicSchedule(t *testing.T) {
	run := func(seed int64) map[string]int64 {
		mon := dsmon.New()
		tr := NewTransport(comm.NewChanTransport(2), 2, seed, DefaultRates(), mon)
		for i := 0; i < 400; i++ {
			tr.Send(comm.Message{From: 0, To: 1, Tag: 7, Seq: uint64(i + 1), Data: []byte{byte(i)}})
		}
		tr.Close()
		return drainInjects(mon)
	}
	a, b := run(42), run(42)
	for k, v := range a {
		if b[k] != v {
			t.Errorf("kind %s: first run %d, second run %d", k, v, b[k])
		}
	}
	c := run(43)
	same := true
	for k, v := range a {
		if c[k] != v {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// TestTransportFaultsAreTransient: every error a chaos transport surfaces
// wraps comm.ErrTransient, so endpoints know they may retry.
func TestTransportFaultsAreTransient(t *testing.T) {
	tr := NewTransport(comm.NewChanTransport(2), 2, 7, DefaultRates(), nil)
	defer tr.Close()
	for i := 0; i < 500; i++ {
		if err := tr.Send(comm.Message{From: 0, To: 1, Tag: 1, Seq: uint64(i + 1)}); err != nil {
			if !comm.IsTransient(err) {
				t.Fatalf("send fault not transient: %v", err)
			}
		}
	}
}

// TestEndpointSurvivesChaos: a sequenced endpoint pair over a chaotic
// transport delivers every payload exactly once, in order — duplicates
// suppressed, drops retried, reorders reassembled.
func TestEndpointSurvivesChaos(t *testing.T) {
	const n = 300
	for seed := int64(1); seed <= 3; seed++ {
		base := comm.NewChanTransport(2)
		tr := NewTransport(base, 2, seed, DefaultRates(), nil)
		prof := vtime.Paragon()
		var c0, c1 vtime.Clock
		snd := comm.NewEndpoint(0, 2, tr, &c0, prof)
		rcv := comm.NewEndpoint(1, 2, tr, &c1, prof).SetRecvDeadline(2 * time.Second)

		errc := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				if err := snd.Send(1, 9, []byte(fmt.Sprintf("m%04d", i))); err != nil {
					errc <- fmt.Errorf("send %d: %w", i, err)
					return
				}
			}
			errc <- nil
		}()
		for i := 0; i < n; i++ {
			got, err := rcv.Recv(0, 9)
			if err != nil {
				t.Fatalf("seed %d: recv %d: %v", seed, i, err)
			}
			if want := fmt.Sprintf("m%04d", i); string(got) != want {
				t.Fatalf("seed %d: message %d = %q, want %q (reorder/dup leaked through)", seed, i, got, want)
			}
		}
		if err := <-errc; err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr.Close()
	}
}

// TestBackendFaultsAreTransient: every chaos storage error wraps
// pfs.ErrTransient, and short transfers report their true progress.
func TestBackendFaultsAreTransient(t *testing.T) {
	b := NewBackend(pfs.NewMemBackend(), 11, DefaultRates(), nil)
	buf := make([]byte, 256)
	for i := range buf {
		buf[i] = byte(i)
	}
	for i := 0; i < 300; i++ {
		n, err := b.WriteAt(buf, int64(i))
		if err != nil {
			if !pfs.IsTransient(err) {
				t.Fatalf("write fault not transient: %v", err)
			}
			if n < 0 || n > len(buf) {
				t.Fatalf("short write reported n=%d", n)
			}
		} else if n != len(buf) {
			t.Fatalf("clean write reported n=%d of %d", n, len(buf))
		}
	}
	for i := 0; i < 300; i++ {
		p := make([]byte, 64)
		n, err := b.ReadAt(p, int64(i))
		if err != nil {
			// A read may surface the inner backend's genuine io.EOF (reads
			// near the end of the image); anything else must be transient.
			if !pfs.IsTransient(err) && !errors.Is(err, io.EOF) {
				t.Fatalf("read fault neither transient nor EOF: %v", err)
			}
			if n < 0 || n > len(p) {
				t.Fatalf("short read reported n=%d", n)
			}
		}
	}
}

// TestResilientFSAbsorbsChaos: a FileSystem whose factory is chaos-wrapped
// still round-trips bytes exactly, and accounts the retries it spent.
func TestResilientFSAbsorbsChaos(t *testing.T) {
	rates := DefaultRates()
	fs := pfs.NewFileSystem(vtime.Paragon(), WrapFactory(pfs.MemFactory(), 5, rates, nil))
	var clk vtime.Clock
	h, err := fs.Open("f", 1, 0, &clk, true)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 64<<10)
	for i := range want {
		want[i] = byte(i * 31)
	}
	const chunk = 1024
	for off := 0; off < len(want); off += chunk {
		if err := h.WriteAt(want[off:off+chunk], int64(off)); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	got := make([]byte, len(want))
	for off := 0; off < len(got); off += chunk {
		if err := h.ReadAt(got[off:off+chunk], int64(off)); err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip through chaotic backend corrupted data")
	}
	if fs.Stats().IORetries == 0 {
		t.Error("no IO retries recorded — chaos rates injected nothing?")
	}
}

// TestBackendDeterministicPerName: the factory derives each file's PRNG
// stream from the name, so open order cannot change a file's schedule.
func TestBackendDeterministicPerName(t *testing.T) {
	count := func(openOrder []string) map[string]int64 {
		mon := dsmon.New()
		f := WrapFactory(pfs.MemFactory(), 99, DefaultRates(), mon)
		for _, name := range openOrder {
			b, err := f(name)
			if err != nil {
				t.Fatal(err)
			}
			p := make([]byte, 128)
			for i := 0; i < 200; i++ {
				b.WriteAt(p, int64(i))
			}
		}
		return injectCounts(mon)
	}
	a := count([]string{"x", "y"})
	b := count([]string{"y", "x"})
	for k, v := range a {
		if b[k] != v {
			t.Errorf("kind %s: order x,y → %d but y,x → %d", k, v, b[k])
		}
	}
}
