package manualbuf

import (
	"fmt"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

func TestRoundTrip(t *testing.T) {
	const particles = 13
	fs := pfs.NewMemFS(vtime.Challenge())
	_, err := machine.Run(machine.Config{NProcs: 4, Profile: vtime.Challenge(), FS: fs},
		func(n *machine.Node) error {
			d, _ := distr.New(18, 4, distr.BlockCyclic, 2)
			c, err := collection.New[scf.Segment](n, d)
			if err != nil {
				return err
			}
			c.Apply(func(g int, s *scf.Segment) { s.Fill(g, particles) })
			if err := WriteSegments(n, c, "mb", particles); err != nil {
				return err
			}
			back, err := collection.New[scf.Segment](n, d)
			if err != nil {
				return err
			}
			if err := ReadSegments(n, back, "mb", particles); err != nil {
				return err
			}
			var bad error
			back.Apply(func(g int, s *scf.Segment) {
				var want scf.Segment
				want.Fill(g, particles)
				if !s.Equal(&want) {
					bad = fmt.Errorf("global %d mismatch", g)
				}
			})
			return bad
		})
	if err != nil {
		t.Fatal(err)
	}
	img, err := fs.Image("mb")
	if err != nil {
		t.Fatal(err)
	}
	// No metadata: file is exactly the packed payload.
	if int64(len(img)) != 18*scf.RawBytes(particles) {
		t.Fatalf("file is %d bytes, want %d (dense, zero metadata)", len(img), 18*scf.RawBytes(particles))
	}
}

func TestRejectsWrongParticleCount(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	_, err := machine.Run(machine.Config{NProcs: 1, Profile: vtime.Challenge(), FS: fs},
		func(n *machine.Node) error {
			d, _ := distr.New(2, 1, distr.Block, 0)
			c, err := collection.New[scf.Segment](n, d)
			if err != nil {
				return err
			}
			c.Apply(func(g int, s *scf.Segment) { s.Fill(g, 3) })
			return WriteSegments(n, c, "mb", 8)
		})
	if err == nil {
		t.Fatal("mismatched particle count accepted")
	}
}

// TestFasterThanUnbufferedShape: manual buffering must beat per-field OS
// calls by a wide margin at benchmark scale — the core claim the paper's
// final rows quantify.
func TestSingleParallelOp(t *testing.T) {
	const particles = scf.DefaultParticles
	prof := vtime.Paragon()
	fs := pfs.NewMemFS(prof)
	res, err := machine.Run(machine.Config{NProcs: 4, Profile: prof, FS: fs},
		func(n *machine.Node) error {
			d, _ := distr.New(256, 4, distr.Cyclic, 0)
			c, err := collection.New[scf.Segment](n, d)
			if err != nil {
				return err
			}
			c.Apply(func(g int, s *scf.Segment) { s.Fill(g, particles) })
			n.Clock().Reset()
			return WriteSegments(n, c, "mb", particles)
		})
	if err != nil {
		t.Fatal(err)
	}
	// One parallel append of ~1.4 MB on the paragon profile: well under a
	// second of disk time plus fixed costs — sanity-bound it.
	if res.Elapsed > 2.0 {
		t.Fatalf("single-op write took %v virtual seconds", res.Elapsed)
	}
}
