// Package manualbuf is the second baseline of the paper's evaluation
// (§4.3): manually buffered I/O, the fastest hand-coded variant. Each node
// packs all of its segments into one buffer and moves it with a single
// parallel operation — "storing no element size or distribution information
// in the file", because "a programmer using manual buffering with operating
// system primitives might not store as much per-element information in the
// file as pC++/streams" when sizes are fixed or computable.
//
// The final row of every table in the paper reports pC++/streams as a
// percentage of this baseline, so its cost structure (one copy, one
// parallel write, zero metadata) is the yardstick.
package manualbuf

import (
	"encoding/binary"
	"fmt"
	"math"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
)

func packSegment(buf []byte, s *scf.Segment) []byte {
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(s.NumberOfParticles))
	buf = append(buf, scratch[:]...)
	for _, arr := range [][]float64{s.X, s.Y, s.Z, s.VX, s.VY, s.VZ, s.Mass} {
		for _, v := range arr {
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
			buf = append(buf, scratch[:]...)
		}
	}
	return buf
}

func unpackSegment(b []byte, particles int) (scf.Segment, []byte) {
	var s scf.Segment
	s.NumberOfParticles = int64(binary.LittleEndian.Uint64(b))
	b = b[8:]
	fields := [7]*[]float64{&s.X, &s.Y, &s.Z, &s.VX, &s.VY, &s.VZ, &s.Mass}
	for _, fp := range fields {
		arr := make([]float64, particles)
		for i := range arr {
			arr[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
		*fp = arr
		b = b[8*particles:]
	}
	return s, b
}

// WriteSegments packs the locally owned segments into one per-node buffer
// and writes all node buffers with a single synchronized parallel
// operation, in node order. No metadata is stored.
func WriteSegments(node *machine.Node, c *collection.Collection[scf.Segment], name string, particles int) error {
	f, err := node.Open(name, true)
	if err != nil {
		return fmt.Errorf("manualbuf: %w", err)
	}
	defer f.Close()

	segBytes := scf.RawBytes(particles)
	buf := make([]byte, 0, int64(c.LocalLen())*segBytes)
	var perr error
	c.Apply(func(g int, s *scf.Segment) {
		if int(s.NumberOfParticles) != particles {
			perr = fmt.Errorf("manualbuf: segment %d has %d particles, expected %d",
				g, s.NumberOfParticles, particles)
			return
		}
		buf = packSegment(buf, s)
	})
	if perr != nil {
		return perr
	}
	node.CopyCost(int64(len(buf)))
	if _, err := f.ParallelAppend(buf); err != nil {
		return fmt.Errorf("manualbuf: %w", err)
	}
	return nil
}

// ReadSegments reads each node's block back with one synchronized parallel
// read and unpacks it. The byte ranges are computed from the fixed segment
// size and the distribution — the programmer's knowledge replacing the
// metadata pC++/streams would have stored.
func ReadSegments(node *machine.Node, c *collection.Collection[scf.Segment], name string, particles int) error {
	f, err := node.Open(name, false)
	if err != nil {
		return fmt.Errorf("manualbuf: %w", err)
	}
	defer f.Close()

	segBytes := scf.RawBytes(particles)
	d := c.Dist()
	var off int64
	for r := 0; r < node.Rank(); r++ {
		off += int64(d.LocalCount(r)) * segBytes
	}
	length := int64(c.LocalLen()) * segBytes
	block, err := f.ParallelRead(pfs.Range{Off: off, Len: int(length)})
	if err != nil {
		return fmt.Errorf("manualbuf: %w", err)
	}
	node.CopyCost(length)

	rest := block
	local := c.Local()
	for l := range local {
		local[l], rest = unpackSegment(rest, particles)
	}
	if len(rest) != 0 {
		return fmt.Errorf("manualbuf: %d trailing bytes after unpack", len(rest))
	}
	return nil
}
