package collective

import (
	"fmt"

	"pcxxstreams/internal/bufpool"
)

// Fan-out sharding: the Linear algorithm funnels every collective through
// the root — P-1 sends or receives on one goroutine — which is exactly the
// bottleneck that flattens the scale curve past a few dozen ranks. Setting
// a fan-out k reshapes the funnel ops (Barrier, Bcast, Gather, Scatterv,
// Reduce, and everything composed from them) onto a k-ary tree over
// virtual ranks: no node touches more than k+1 messages per operation, and
// the depth is log_k P. Gather and Scatterv shard the payloads too — each
// tree edge carries one packed frame of (u32 rank, u32 len, bytes)*
// entries for the whole subtree below it, so the root handles k frames
// instead of P-1 messages.
//
// Fan-out takes precedence over SetAlgorithm for the operations it
// implements: it is an explicit opt-in, set identically on every rank.
// Like the Tree algorithm (and unlike Linear), the sharded operations
// release ranks within O(log_k P) message latencies of each other rather
// than at one bit-equal virtual instant.

// SetFanout selects the k-ary sharded collectives with fan-out k (k >= 2);
// zero restores the algorithm chosen by SetAlgorithm. Every rank of the
// group must use the same setting — the tree shape is part of the wire
// protocol. Returns the communicator for chaining.
func (c *Comm) SetFanout(k int) *Comm {
	if k == 1 {
		k = 2 // a 1-ary "tree" is a P-deep chain; never what anyone wants
	}
	c.fanout = k
	return c
}

// Fanout reports the active fan-out (0 = sharding off).
func (c *Comm) Fanout() int { return c.fanout }

// sharded reports whether the k-ary paths are active for this group size.
func (c *Comm) sharded() bool { return c.fanout >= 2 && c.Size() > 2 }

// kparent returns the virtual rank of v's parent in the k-ary heap layout.
func kparent(v, k int) int { return (v - 1) / k }

// kchild returns v's i-th child (i in [0, k)) in the k-ary heap layout,
// or -1 when it falls outside the group.
func kchild(v, i, k, n int) int {
	ch := v*k + 1 + i
	if ch >= n {
		return -1
	}
	return ch
}

// kroute returns which direct child subtree of v holds virtual rank u
// (u must be a strict descendant of v): it climbs u's ancestor chain until
// the next step up would reach v.
func kroute(v, u, k int) int {
	for kparent(u, k) != v {
		u = kparent(u, k)
	}
	return u
}

// barrierKary runs the barrier over the k-ary tree: arrivals fan in to the
// root, releases fan back out, and no rank handles more than fanout+1
// messages.
func (c *Comm) barrierKary(seq uint64) error {
	n, k := c.Size(), c.fanout
	v := vrank(c.Rank(), 0, n)
	for i := 0; i < k; i++ {
		ch := kchild(v, i, k, n)
		if ch < 0 {
			break
		}
		if _, err := c.ep.Recv(prank(ch, 0, n), tag(kindBarrier, seq, 0)); err != nil {
			return fmt.Errorf("collective: sharded barrier gather: %w", err)
		}
	}
	if v != 0 {
		parent := prank(kparent(v, k), 0, n)
		if err := c.ep.Send(parent, tag(kindBarrier, seq, 0), nil); err != nil {
			return fmt.Errorf("collective: sharded barrier arrive: %w", err)
		}
		if _, err := c.ep.Recv(parent, tag(kindBarrier, seq, 1)); err != nil {
			return fmt.Errorf("collective: sharded barrier release: %w", err)
		}
	}
	for i := 0; i < k; i++ {
		ch := kchild(v, i, k, n)
		if ch < 0 {
			break
		}
		if err := c.ep.Send(prank(ch, 0, n), tag(kindBarrier, seq, 1), nil); err != nil {
			return fmt.Errorf("collective: sharded barrier release: %w", err)
		}
	}
	return nil
}

// bcastKary forwards root's payload down the k-ary tree. Non-root callers
// receive a pooled buffer they own, matching the Tree algorithm's contract.
func (c *Comm) bcastKary(seq uint64, root int, data []byte) ([]byte, error) {
	n, k := c.Size(), c.fanout
	v := vrank(c.Rank(), root, n)
	if v != 0 {
		d, err := c.ep.Recv(prank(kparent(v, k), root, n), tag(kindBcast, seq, 0))
		if err != nil {
			return nil, fmt.Errorf("collective: sharded bcast recv: %w", err)
		}
		data = d
	}
	for i := 0; i < k; i++ {
		ch := kchild(v, i, k, n)
		if ch < 0 {
			break
		}
		if err := c.ep.Send(prank(ch, root, n), tag(kindBcast, seq, 0), data); err != nil {
			return nil, fmt.Errorf("collective: sharded bcast send: %w", err)
		}
	}
	return data, nil
}

// reduceKary folds values up the k-ary tree onto the root. Children are
// consumed in child order, so the floating-point fold order is a
// deterministic function of (size, fanout, root).
func (c *Comm) reduceKary(seq uint64, root int, val float64, op ReduceOp) (float64, error) {
	n, k := c.Size(), c.fanout
	v := vrank(c.Rank(), root, n)
	acc := val
	for i := 0; i < k; i++ {
		ch := kchild(v, i, k, n)
		if ch < 0 {
			break
		}
		d, err := c.ep.Recv(prank(ch, root, n), tag(kindReduce, seq, 0))
		if err != nil {
			return 0, fmt.Errorf("collective: sharded reduce recv: %w", err)
		}
		acc = op.apply(acc, decodeTime(d))
		bufpool.Put(d)
	}
	if v != 0 {
		parent := prank(kparent(v, k), root, n)
		if err := c.ep.Send(parent, tag(kindReduce, seq, 0), c.timeFrame(acc)); err != nil {
			return 0, fmt.Errorf("collective: sharded reduce send: %w", err)
		}
		return 0, nil
	}
	return acc, nil
}

// gatherKary funnels contributions up the k-ary tree. Each internal node
// packs its own entry plus its children's (already packed) subtree frames
// into one frame for its parent; the root unpacks k frames into the
// rank-indexed result. Entry layout: (u32 rank, u32 len, bytes)*.
func (c *Comm) gatherKary(seq uint64, root int, data []byte) ([][]byte, error) {
	n, k := c.Size(), c.fanout
	v := vrank(c.Rank(), root, n)

	var out [][]byte
	var pack Buffer2
	if v == 0 {
		out = make([][]byte, n)
		out[root] = data
	} else {
		pack.b = pack.b[:0]
		pack.u32(uint32(c.Rank()))
		pack.u32(uint32(len(data)))
		pack.raw(data)
	}
	for i := 0; i < k; i++ {
		ch := kchild(v, i, k, n)
		if ch < 0 {
			break
		}
		d, err := c.ep.Recv(prank(ch, root, n), tag(kindGather, seq, 0))
		if err != nil {
			return nil, fmt.Errorf("collective: sharded gather recv: %w", err)
		}
		if v == 0 {
			err = unpackEntries(d, out)
		} else {
			pack.raw(d)
		}
		bufpool.Put(d)
		if err != nil {
			return nil, err
		}
	}
	if v != 0 {
		parent := prank(kparent(v, k), root, n)
		if err := c.ep.Send(parent, tag(kindGather, seq, 0), pack.b); err != nil {
			return nil, fmt.Errorf("collective: sharded gather send: %w", err)
		}
		return nil, nil
	}
	for r, b := range out {
		if b == nil && r != root {
			return nil, fmt.Errorf("collective: sharded gather missing rank %d", r)
		}
	}
	return out, nil
}

// unpackEntries parses a packed (u32 rank, u32 len, bytes)* frame into the
// rank-indexed slice, copying each payload into a pooled buffer the caller
// owns.
func unpackEntries(d []byte, out [][]byte) error {
	n := len(out)
	for off := 0; off < len(d); {
		if off+8 > len(d) {
			return fmt.Errorf("collective: sharded gather frame truncated")
		}
		r := int(le32(d[off:]))
		l := int(le32(d[off+4:]))
		off += 8
		if r < 0 || r >= n || off+l > len(d) {
			return fmt.Errorf("collective: sharded gather frame corrupt")
		}
		blk := bufpool.Get(l)
		copy(blk, d[off:off+l])
		out[r] = blk
		off += l
	}
	return nil
}

// scattervKary distributes parts down the k-ary tree: the root packs one
// frame per child holding every entry destined for that child's subtree;
// each child extracts its own part and repacks the remainder for the next
// level. The root's per-operation work drops from P-1 sends to fanout
// frame assemblies.
func (c *Comm) scattervKary(seq uint64, root int, parts [][]byte) ([]byte, error) {
	n, k := c.Size(), c.fanout
	v := vrank(c.Rank(), root, n)

	var own []byte
	packs := make([]Buffer2, k)
	if v == 0 {
		if len(parts) != n {
			return nil, fmt.Errorf("collective: scatterv got %d parts for %d ranks", len(parts), n)
		}
		own = bufpool.Get(len(parts[root]))
		copy(own, parts[root])
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			u := vrank(r, root, n)
			p := &packs[kroute(0, u, k)-1] // child i occupies virtual rank i+1
			p.u32(uint32(r))
			p.u32(uint32(len(parts[r])))
			p.raw(parts[r])
		}
	} else {
		parent := prank(kparent(v, k), root, n)
		d, err := c.ep.Recv(parent, tag(kindGather, seq, 1))
		if err != nil {
			return nil, fmt.Errorf("collective: sharded scatterv recv: %w", err)
		}
		me := c.Rank()
		for off := 0; off < len(d); {
			if off+8 > len(d) {
				bufpool.Put(d)
				return nil, fmt.Errorf("collective: sharded scatterv frame truncated")
			}
			r := int(le32(d[off:]))
			l := int(le32(d[off+4:]))
			off += 8
			if r < 0 || r >= n || off+l > len(d) {
				bufpool.Put(d)
				return nil, fmt.Errorf("collective: sharded scatterv frame corrupt")
			}
			if r == me {
				own = bufpool.Get(l)
				copy(own, d[off:off+l])
			} else {
				u := vrank(r, root, n)
				p := &packs[kroute(v, u, k)-1-v*k] // child index within v's block
				p.u32(uint32(r))
				p.u32(uint32(l))
				p.raw(d[off : off+l])
			}
			off += l
		}
		bufpool.Put(d)
		if own == nil {
			return nil, fmt.Errorf("collective: sharded scatterv frame missing own part")
		}
	}
	for i := 0; i < k; i++ {
		ch := kchild(v, i, k, n)
		if ch < 0 {
			break
		}
		if err := c.ep.Send(prank(ch, root, n), tag(kindGather, seq, 1), packs[i].b); err != nil {
			bufpool.Put(own)
			return nil, fmt.Errorf("collective: sharded scatterv send: %w", err)
		}
	}
	return own, nil
}
