package collective

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/vtime"
)

// spmd runs body on n ranks over a fresh channel transport and returns the
// final virtual clock of every rank. Errors inside body fail the test.
func spmd(t *testing.T, n int, body func(c *Comm) error) []float64 {
	t.Helper()
	tr := comm.NewChanTransport(n)
	defer tr.Close()
	clocks := make([]vtime.Clock, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := comm.NewEndpoint(r, n, tr, &clocks[r], vtime.Paragon())
			errs[r] = body(New(ep))
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	out := make([]float64, n)
	for i := range clocks {
		out[i] = clocks[i].Now()
	}
	return out
}

func TestBarrierEqualizesClocks(t *testing.T) {
	times := spmd(t, 6, func(c *Comm) error {
		// Skew the clocks first.
		c.Endpoint().Clock().Advance(float64(c.Rank()) * 0.5)
		return c.Barrier()
	})
	for r, tm := range times {
		if tm != times[0] {
			t.Fatalf("rank %d clock %v != rank 0 clock %v after barrier", r, tm, times[0])
		}
	}
	if times[0] < 2.5 {
		t.Fatalf("barrier exit %v earlier than slowest participant (2.5)", times[0])
	}
}

func TestBarrierSingleRank(t *testing.T) {
	spmd(t, 1, func(c *Comm) error { return c.Barrier() })
}

func TestBcast(t *testing.T) {
	for _, root := range []int{0, 2} {
		root := root
		times := spmd(t, 4, func(c *Comm) error {
			var data []byte
			if c.Rank() == root {
				data = []byte("payload from root")
			}
			got, err := c.Bcast(root, data)
			if err != nil {
				return err
			}
			if string(got) != "payload from root" {
				return fmt.Errorf("rank %d got %q", c.Rank(), got)
			}
			return nil
		})
		for r, tm := range times {
			if tm != times[0] {
				t.Fatalf("root=%d: rank %d clock %v != %v", root, r, tm, times[0])
			}
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	spmd(t, 2, func(c *Comm) error {
		if _, err := c.Bcast(5, nil); err == nil {
			return fmt.Errorf("invalid root accepted")
		}
		// Consume the wasted sequence number identically on all ranks: the
		// failed call bumped seq before validating, so the group is still
		// aligned. Verify with a real collective.
		return c.Barrier()
	})
}

func TestGather(t *testing.T) {
	spmd(t, 5, func(c *Comm) error {
		mine := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
		parts, err := c.Gather(0, mine)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if parts != nil {
				return fmt.Errorf("non-root got parts")
			}
			return nil
		}
		for r, p := range parts {
			if len(p) != 2 || p[0] != byte(r) || p[1] != byte(r*2) {
				return fmt.Errorf("part %d = %v", r, p)
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	spmd(t, 4, func(c *Comm) error {
		mine := bytes.Repeat([]byte{byte(c.Rank() + 1)}, c.Rank()+1) // varied sizes
		parts, err := c.Allgather(mine)
		if err != nil {
			return err
		}
		if len(parts) != 4 {
			return fmt.Errorf("got %d parts", len(parts))
		}
		for r, p := range parts {
			want := bytes.Repeat([]byte{byte(r + 1)}, r+1)
			if !bytes.Equal(p, want) {
				return fmt.Errorf("part %d = %v, want %v", r, p, want)
			}
		}
		return nil
	})
}

func TestAllgatherEmptyContributions(t *testing.T) {
	spmd(t, 3, func(c *Comm) error {
		parts, err := c.Allgather(nil)
		if err != nil {
			return err
		}
		for r, p := range parts {
			if len(p) != 0 {
				return fmt.Errorf("part %d nonempty: %v", r, p)
			}
		}
		return nil
	})
}

func TestAlltoallv(t *testing.T) {
	const n = 4
	times := spmd(t, n, func(c *Comm) error {
		me := c.Rank()
		bufs := make([][]byte, n)
		for j := 0; j < n; j++ {
			// Message content encodes (sender, receiver); length varies.
			bufs[j] = bytes.Repeat([]byte{byte(10*me + j)}, me+j+1)
		}
		got, err := c.Alltoallv(bufs)
		if err != nil {
			return err
		}
		for r, p := range got {
			want := bytes.Repeat([]byte{byte(10*r + me)}, r+me+1)
			if !bytes.Equal(p, want) {
				return fmt.Errorf("rank %d from %d: got %v want %v", me, r, p, want)
			}
		}
		return nil
	})
	for r, tm := range times {
		if tm != times[0] {
			t.Fatalf("rank %d clock %v != %v after alltoallv", r, tm, times[0])
		}
	}
}

func TestAlltoallvSelfCopyIsolation(t *testing.T) {
	spmd(t, 2, func(c *Comm) error {
		bufs := [][]byte{[]byte("aa"), []byte("bb")}
		got, err := c.Alltoallv(bufs)
		if err != nil {
			return err
		}
		// Mutating the input after the exchange must not affect the output.
		bufs[c.Rank()][0] = 'X'
		if got[c.Rank()][0] == 'X' {
			return fmt.Errorf("self delivery aliases sender buffer")
		}
		return nil
	})
}

func TestAlltoallvChunked(t *testing.T) {
	// With a message bound far below the payload sizes, contributions travel
	// as framed chunk trains; the result must be identical to the unchunked
	// exchange, including empty and sub-chunk-size payloads.
	const n = 4
	spmd(t, n, func(c *Comm) error {
		c.SetMaxMsgBytes(64)
		me := c.Rank()
		bufs := make([][]byte, n)
		for j := 0; j < n; j++ {
			switch {
			case me == 1 && j == 2:
				bufs[j] = nil // empty contribution
			case me == 2 && j == 1:
				bufs[j] = []byte{0xAB} // smaller than one chunk
			default:
				bufs[j] = bytes.Repeat([]byte{byte(10*me + j)}, 500+13*me+j)
			}
		}
		got, err := c.Alltoallv(bufs)
		if err != nil {
			return err
		}
		for r, p := range got {
			var want []byte
			switch {
			case r == 1 && me == 2:
				want = nil
			case r == 2 && me == 1:
				want = []byte{0xAB}
			default:
				want = bytes.Repeat([]byte{byte(10*r + me)}, 500+13*r+me)
			}
			if !bytes.Equal(p, want) {
				return fmt.Errorf("rank %d from %d: got %d bytes, want %d", me, r, len(p), len(want))
			}
		}
		return nil
	})
}

func TestAlltoallvChunkAutoRaise(t *testing.T) {
	// A pathologically small bound must still move a payload whose chunk
	// count would overflow the 16-bit sub-index space: the chunk size is
	// raised deterministically instead.
	spmd(t, 2, func(c *Comm) error {
		c.SetMaxMsgBytes(1)
		me := c.Rank()
		big := bytes.Repeat([]byte{byte(me + 1)}, 1<<16) // 64Ki payload, bound 1
		got, err := c.Alltoallv([][]byte{big, big})
		if err != nil {
			return err
		}
		want := bytes.Repeat([]byte{byte(2 - me)}, 1<<16)
		if !bytes.Equal(got[1-me], want) {
			return fmt.Errorf("rank %d: chunked payload corrupted", me)
		}
		return nil
	})
}

func TestAlltoallvWrongLen(t *testing.T) {
	spmd(t, 2, func(c *Comm) error {
		if _, err := c.Alltoallv(make([][]byte, 3)); err == nil {
			return fmt.Errorf("wrong buffer count accepted")
		}
		return nil
	})
}

func TestReduce(t *testing.T) {
	spmd(t, 4, func(c *Comm) error {
		v := float64(c.Rank() + 1) // 1,2,3,4
		sum, err := c.Reduce(0, v, OpSum)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && sum != 10 {
			return fmt.Errorf("sum = %v, want 10", sum)
		}
		max, err := c.Reduce(0, v, OpMax)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && max != 4 {
			return fmt.Errorf("max = %v, want 4", max)
		}
		min, err := c.Reduce(0, v, OpMin)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && min != 1 {
			return fmt.Errorf("min = %v, want 1", min)
		}
		return nil
	})
}

func TestAllreduce(t *testing.T) {
	times := spmd(t, 5, func(c *Comm) error {
		got, err := c.Allreduce(float64(c.Rank()), OpMax)
		if err != nil {
			return err
		}
		if got != 4 {
			return fmt.Errorf("rank %d allreduce max = %v, want 4", c.Rank(), got)
		}
		return nil
	})
	for r, tm := range times {
		if tm != times[0] {
			t.Fatalf("rank %d clock %v != %v after allreduce", r, tm, times[0])
		}
	}
}

// TestSequencedCollectivesDoNotCrosstalk runs several different collectives
// back to back and checks results stay separated.
func TestSequencedCollectivesDoNotCrosstalk(t *testing.T) {
	spmd(t, 3, func(c *Comm) error {
		for i := 0; i < 10; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			msg := []byte(fmt.Sprintf("round-%d", i))
			var in []byte
			if c.Rank() == 0 {
				in = msg
			}
			got, err := c.Bcast(0, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, msg) {
				return fmt.Errorf("round %d: got %q", i, got)
			}
			s, err := c.Allreduce(1, OpSum)
			if err != nil {
				return err
			}
			if s != 3 {
				return fmt.Errorf("round %d: sum %v", i, s)
			}
		}
		return nil
	})
}

// TestDeterministicVirtualTime: the same program yields bit-identical clocks
// on repeated runs.
func TestDeterministicVirtualTime(t *testing.T) {
	run := func() []float64 {
		return spmd(t, 4, func(c *Comm) error {
			for i := 0; i < 5; i++ {
				if _, err := c.Allgather(make([]byte, 100*(c.Rank()+1))); err != nil {
					return err
				}
				bufs := make([][]byte, 4)
				for j := range bufs {
					bufs[j] = make([]byte, 64*j)
				}
				if _, err := c.Alltoallv(bufs); err != nil {
					return err
				}
			}
			return c.Barrier()
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: run1 %v != run2 %v", i, a[i], b[i])
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},
		{nil},
		{[]byte("a")},
		{[]byte(""), []byte("xy"), nil, []byte("0123456789")},
	}
	for _, parts := range cases {
		got, err := unflatten(flatten(parts))
		if err != nil {
			t.Fatalf("unflatten(%v): %v", parts, err)
		}
		if len(got) != len(parts) {
			t.Fatalf("len %d != %d", len(got), len(parts))
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				t.Fatalf("part %d: %v != %v", i, got[i], parts[i])
			}
		}
	}
}

func TestUnflattenRejectsCorrupt(t *testing.T) {
	for _, b := range [][]byte{
		{},
		{1, 0, 0},
		{2, 0, 0, 0, 5, 0, 0, 0}, // truncated lengths
		append(flatten([][]byte{[]byte("ab")}), 0xFF), // trailing junk
	} {
		if _, err := unflatten(b); err == nil {
			t.Errorf("unflatten(%v) accepted corrupt input", b)
		}
	}
}

func TestScatterv(t *testing.T) {
	spmd(t, 4, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 1 {
			parts = [][]byte{[]byte("aa"), []byte("b"), []byte("cccc"), nil}
		}
		got, err := c.Scatterv(1, parts)
		if err != nil {
			return err
		}
		want := []string{"aa", "b", "cccc", ""}[c.Rank()]
		if string(got) != want {
			return fmt.Errorf("rank %d got %q, want %q", c.Rank(), got, want)
		}
		return nil
	})
}

func TestScattervSelfCopyIsolation(t *testing.T) {
	spmd(t, 2, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 0 {
			parts = [][]byte{[]byte("mine"), []byte("yours")}
		}
		got, err := c.Scatterv(0, parts)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			parts[0][0] = 'X'
			if got[0] == 'X' {
				return fmt.Errorf("scatterv self part aliases input")
			}
		}
		return nil
	})
}

func TestScattervValidation(t *testing.T) {
	spmd(t, 2, func(c *Comm) error {
		if _, err := c.Scatterv(9, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		if c.Rank() == 0 {
			if _, err := c.Scatterv(0, make([][]byte, 5)); err == nil {
				return fmt.Errorf("wrong part count accepted")
			}
		} else {
			// keep sequence numbers aligned with rank 0's failed call
			c.next()
		}
		return nil
	})
}

// spmdTCP mirrors spmd over real loopback sockets.
func spmdTCP(t *testing.T, n int, body func(c *Comm) error) {
	t.Helper()
	tr, err := comm.NewTCPTransport(n)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	clocks := make([]vtime.Clock, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := comm.NewEndpoint(r, n, tr, &clocks[r], vtime.Paragon())
			errs[r] = body(New(ep))
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestCollectivesOverTCP exercises every collective over real sockets.
func TestCollectivesOverTCP(t *testing.T) {
	spmdTCP(t, 4, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		got, err := c.Bcast(1, map[bool][]byte{true: []byte("tcp"), false: nil}[c.Rank() == 1])
		if err != nil {
			return err
		}
		if string(got) != "tcp" {
			return fmt.Errorf("bcast got %q", got)
		}
		parts, err := c.Allgather([]byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for r, p := range parts {
			if len(p) != 1 || p[0] != byte(r) {
				return fmt.Errorf("allgather part %d = %v", r, p)
			}
		}
		bufs := make([][]byte, 4)
		for j := range bufs {
			bufs[j] = []byte{byte(c.Rank()), byte(j)}
		}
		recv, err := c.Alltoallv(bufs)
		if err != nil {
			return err
		}
		for r, p := range recv {
			if p[0] != byte(r) || p[1] != byte(c.Rank()) {
				return fmt.Errorf("alltoallv from %d = %v", r, p)
			}
		}
		sum, err := c.Allreduce(float64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		if sum != 10 {
			return fmt.Errorf("allreduce = %v", sum)
		}
		part, err := c.Scatterv(0, map[bool][][]byte{
			true:  {[]byte("r0"), []byte("r1"), []byte("r2"), []byte("r3")},
			false: nil,
		}[c.Rank() == 0])
		if err != nil {
			return err
		}
		if string(part) != fmt.Sprintf("r%d", c.Rank()) {
			return fmt.Errorf("scatterv = %q", part)
		}
		return nil
	})
}
