package collective

import (
	"bytes"
	"fmt"
	"testing"

	"pcxxstreams/internal/vtime"
)

// spmdAlg runs body over the channel transport with the given algorithm.
func spmdAlg(t *testing.T, n int, alg Algorithm, body func(c *Comm) error) []float64 {
	t.Helper()
	return spmd(t, n, func(c *Comm) error {
		c.SetAlgorithm(alg)
		return body(c)
	})
}

func TestTreeBcastAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16} {
		for _, root := range []int{0, n - 1, n / 2} {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				spmdAlg(t, n, Tree, func(c *Comm) error {
					var data []byte
					if c.Rank() == root {
						data = []byte(fmt.Sprintf("payload-%d-%d", n, root))
					}
					got, err := c.Bcast(root, data)
					if err != nil {
						return err
					}
					want := fmt.Sprintf("payload-%d-%d", n, root)
					if string(got) != want {
						return fmt.Errorf("rank %d got %q", c.Rank(), got)
					}
					return nil
				})
			})
		}
	}
}

func TestTreeReduceAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 9, 16} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			spmdAlg(t, n, Tree, func(c *Comm) error {
				// Integer-valued floats: exact under any association order.
				sum, err := c.Reduce(0, float64(c.Rank()+1), OpSum)
				if err != nil {
					return err
				}
				want := float64(n*(n+1)) / 2
				if c.Rank() == 0 && sum != want {
					return fmt.Errorf("sum = %v, want %v", sum, want)
				}
				max, err := c.Reduce(0, float64(c.Rank()), OpMax)
				if err != nil {
					return err
				}
				if c.Rank() == 0 && max != float64(n-1) {
					return fmt.Errorf("max = %v", max)
				}
				return nil
			})
		})
	}
}

func TestTreeBarrierOrdering(t *testing.T) {
	// The dissemination barrier must not release anyone before the slowest
	// participant arrived.
	times := spmdAlg(t, 8, Tree, func(c *Comm) error {
		c.Endpoint().Clock().Advance(float64(c.Rank()))
		return c.Barrier()
	})
	for r, tm := range times {
		if tm < 7 {
			t.Fatalf("rank %d left the barrier at %v, before the slowest arrival (7)", r, tm)
		}
	}
}

func TestTreeAllreduce(t *testing.T) {
	spmdAlg(t, 12, Tree, func(c *Comm) error {
		got, err := c.Allreduce(1, OpSum)
		if err != nil {
			return err
		}
		if got != 12 {
			return fmt.Errorf("allreduce = %v", got)
		}
		return nil
	})
}

func TestTreeCollectivesSequence(t *testing.T) {
	spmdAlg(t, 5, Tree, func(c *Comm) error {
		for i := 0; i < 5; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			msg := []byte{byte(i)}
			var in []byte
			if c.Rank() == i%5 {
				in = msg
			}
			got, err := c.Bcast(i%5, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, msg) {
				return fmt.Errorf("round %d got %v", i, got)
			}
		}
		return nil
	})
}

// TestTreeScalesLogarithmically: at 64 nodes, tree broadcast completes in
// far less virtual time than linear broadcast.
func TestTreeScalesLogarithmically(t *testing.T) {
	elapsed := func(n int, alg Algorithm) float64 {
		times := spmdAlg(t, n, alg, func(c *Comm) error {
			var data []byte
			if c.Rank() == 0 {
				data = make([]byte, 1024)
			}
			_, err := c.Bcast(0, data)
			return err
		})
		return vtime.MaxOf(times)
	}
	lin, tree := elapsed(256, Linear), elapsed(256, Tree)
	if tree >= lin/3 {
		t.Fatalf("tree bcast (%v) not ≥3x faster than linear (%v) at 256 nodes", tree, lin)
	}
	// At the paper's scale the two are comparable; linear is not broken.
	lin8, tree8 := elapsed(8, Linear), elapsed(8, Tree)
	if lin8 > 3*tree8 {
		t.Fatalf("linear (%v) unexpectedly poor at 8 nodes vs tree (%v)", lin8, tree8)
	}
}

func TestAlgorithmString(t *testing.T) {
	if Linear.String() != "linear" || Tree.String() != "tree" {
		t.Fatal("algorithm names wrong")
	}
}

// TestAlgorithmsAgreeOnResults: for exact-representable inputs, the linear
// and tree algorithms compute identical collective results across random
// group sizes and roots.
func TestAlgorithmsAgreeOnResults(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 11} {
		n := n
		results := map[Algorithm][]float64{}
		for _, alg := range []Algorithm{Linear, Tree} {
			sums := make([]float64, n)
			spmdAlg(t, n, alg, func(c *Comm) error {
				s, err := c.Allreduce(float64(c.Rank()*3+1), OpSum)
				if err != nil {
					return err
				}
				sums[c.Rank()] = s
				return nil
			})
			results[alg] = sums
		}
		for r := 0; r < n; r++ {
			if results[Linear][r] != results[Tree][r] {
				t.Fatalf("n=%d rank %d: linear %v != tree %v",
					n, r, results[Linear][r], results[Tree][r])
			}
		}
	}
}

// TestGatherScattervInverse: Scatterv undoes Gather.
func TestGatherScattervInverse(t *testing.T) {
	spmd(t, 5, func(c *Comm) error {
		mine := []byte(fmt.Sprintf("rank-%d-data", c.Rank()))
		parts, err := c.Gather(0, mine)
		if err != nil {
			return err
		}
		got, err := c.Scatterv(0, parts)
		if err != nil {
			return err
		}
		if string(got) != string(mine) {
			return fmt.Errorf("rank %d: scatter(gather(x)) = %q, want %q", c.Rank(), got, mine)
		}
		return nil
	})
}

// TestRecursiveDoublingAllgather: correct contents at power-of-two sizes,
// fallback at others, and a latency win over the rooted linear version.
func TestRecursiveDoublingAllgather(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 3, 6} { // incl. non-powers (fallback)
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			spmdAlg(t, n, Tree, func(c *Comm) error {
				mine := bytes.Repeat([]byte{byte('A' + c.Rank())}, c.Rank()+1)
				parts, err := c.Allgather(mine)
				if err != nil {
					return err
				}
				if len(parts) != n {
					return fmt.Errorf("got %d parts", len(parts))
				}
				for r, p := range parts {
					want := bytes.Repeat([]byte{byte('A' + r)}, r+1)
					if !bytes.Equal(p, want) {
						return fmt.Errorf("rank %d part %d = %q, want %q", c.Rank(), r, p, want)
					}
				}
				return nil
			})
		})
	}
}

// TestRDAllgatherBufferIsolation: the returned own-part must not alias the
// caller's buffer.
func TestRDAllgatherBufferIsolation(t *testing.T) {
	spmdAlg(t, 4, Tree, func(c *Comm) error {
		mine := []byte{byte(c.Rank()), 99}
		parts, err := c.Allgather(mine)
		if err != nil {
			return err
		}
		mine[1] = 0
		if parts[c.Rank()][1] != 99 {
			return fmt.Errorf("allgather aliased input buffer")
		}
		return nil
	})
}

// TestRDAllgatherFasterAtScale: at 128 nodes the log-round exchange beats
// the rooted gather+bcast in virtual time.
func TestRDAllgatherFasterAtScale(t *testing.T) {
	elapsed := func(alg Algorithm) float64 {
		times := spmdAlg(t, 128, alg, func(c *Comm) error {
			_, err := c.Allgather(make([]byte, 32))
			return err
		})
		return vtime.MaxOf(times)
	}
	lin, tree := elapsed(Linear), elapsed(Tree)
	if tree >= lin/2 {
		t.Fatalf("rd allgather (%v) not ≥2x faster than linear (%v) at 128 nodes", tree, lin)
	}
}
