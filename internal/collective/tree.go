package collective

import (
	"fmt"
	"math/bits"

	"pcxxstreams/internal/bufpool"
)

// Algorithm selects how the collectives are realized on the wire.
type Algorithm uint8

const (
	// Linear has the root exchange directly with every rank: optimal for
	// the paper's 4-16 node machines, O(P) rounds at the root.
	Linear Algorithm = iota
	// Tree uses binomial-tree broadcast/reduce and a dissemination barrier:
	// O(log P) depth, the right choice as the simulated machine grows
	// beyond the paper's scale.
	Tree
)

func (a Algorithm) String() string {
	switch a {
	case Linear:
		return "linear"
	case Tree:
		return "tree"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// SetAlgorithm selects the collective algorithm; every rank of the group
// must choose the same one. Returns the communicator for chaining.
func (c *Comm) SetAlgorithm(a Algorithm) *Comm {
	c.alg = a
	return c
}

// Algorithm reports the active algorithm.
func (c *Comm) Algorithm() Algorithm { return c.alg }

// vrank remaps ranks so the root is virtual rank 0.
func vrank(rank, root, n int) int { return (rank - root + n) % n }

// prank inverts vrank.
func prank(v, root, n int) int { return (v + root) % n }

// bcastTree distributes root's payload along a binomial tree: in round k
// (mask 2^k), every informed virtual rank v < mask sends to v+mask.
func (c *Comm) bcastTree(seq uint64, root int, data []byte) ([]byte, error) {
	n := c.Size()
	v := vrank(c.Rank(), root, n)
	// Receive first (non-root ranks): the sender is v with the highest set
	// bit cleared, in the round of that bit.
	if v != 0 {
		bit := highestBit(v)
		from := prank(v&^bit, root, n)
		d, err := c.ep.Recv(from, tag(kindBcast, seq, bitIndex(bit)))
		if err != nil {
			return nil, fmt.Errorf("collective: tree bcast recv: %w", err)
		}
		data = d
	}
	// Then forward to children: rounds after the one we were informed in.
	start := 1
	if v != 0 {
		start = int(highestBit(v)) << 1
	}
	for mask := start; mask < n; mask <<= 1 {
		if v >= mask {
			continue
		}
		child := v + mask
		if child >= n {
			continue
		}
		if err := c.ep.Send(prank(child, root, n), tag(kindBcast, seq, bitIndex(mask)), data); err != nil {
			return nil, fmt.Errorf("collective: tree bcast send: %w", err)
		}
	}
	return data, nil
}

// reduceTree folds values up a binomial tree onto the root.
func (c *Comm) reduceTree(seq uint64, root int, val float64, op ReduceOp) (float64, error) {
	n := c.Size()
	v := vrank(c.Rank(), root, n)
	acc := val
	for mask := 1; mask < n; mask <<= 1 {
		if v&mask != 0 {
			// Send partial up and leave.
			parent := prank(v&^mask, root, n)
			if err := c.ep.Send(parent, tag(kindReduce, seq, bitIndex(mask)), c.timeFrame(acc)); err != nil {
				return 0, fmt.Errorf("collective: tree reduce send: %w", err)
			}
			return 0, nil
		}
		child := v | mask
		if child < n {
			d, err := c.ep.Recv(prank(child, root, n), tag(kindReduce, seq, bitIndex(mask)))
			if err != nil {
				return 0, fmt.Errorf("collective: tree reduce recv: %w", err)
			}
			acc = op.apply(acc, decodeTime(d))
			bufpool.Put(d)
		}
	}
	return acc, nil
}

// allgatherRD is the recursive-doubling allgather for power-of-two group
// sizes: in round k every rank exchanges its accumulated block set with
// rank me XOR 2^k, so all P contributions reach everyone in log P rounds.
func (c *Comm) allgatherRD(seq uint64, mine []byte) ([][]byte, error) {
	n := c.Size()
	me := c.Rank()
	have := make([][]byte, n)
	ownCopy := bufpool.Get(len(mine))
	copy(ownCopy, mine)
	have[me] = ownCopy

	// One pack buffer serves every round; the transport copies it on Send.
	var pack Buffer2
	for k, mask := 0, 1; mask < n; k, mask = k+1, mask<<1 {
		partner := me ^ mask
		// Pack every block currently held: (u32 rank, u32 len, bytes)*.
		pack.b = pack.b[:0]
		for r, b := range have {
			if b == nil {
				continue
			}
			pack.u32(uint32(r))
			pack.u32(uint32(len(b)))
			pack.raw(b)
		}
		if err := c.ep.Send(partner, tag(kindGather, seq, k), pack.b); err != nil {
			return nil, fmt.Errorf("collective: rd allgather send: %w", err)
		}
		d, err := c.ep.Recv(partner, tag(kindGather, seq, k))
		if err != nil {
			return nil, fmt.Errorf("collective: rd allgather recv: %w", err)
		}
		for off := 0; off < len(d); {
			if off+8 > len(d) {
				return nil, fmt.Errorf("collective: rd allgather frame truncated")
			}
			r := int(le32(d[off:]))
			l := int(le32(d[off+4:]))
			off += 8
			if r < 0 || r >= n || off+l > len(d) {
				return nil, fmt.Errorf("collective: rd allgather frame corrupt")
			}
			blk := bufpool.Get(l)
			copy(blk, d[off:off+l])
			have[r] = blk
			off += l
		}
		bufpool.Put(d)
	}
	for r, b := range have {
		if b == nil {
			return nil, fmt.Errorf("collective: rd allgather missing rank %d", r)
		}
	}
	return have, nil
}

// Buffer2 is a minimal append buffer local to the tree algorithms (the enc
// package is above this one in the dependency order).
type Buffer2 struct{ b []byte }

func (e *Buffer2) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *Buffer2) raw(p []byte) { e.b = append(e.b, p...) }

func le32(p []byte) uint32 {
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// barrierDissemination is the log-round dissemination barrier: in round k
// every rank signals (rank+2^k) mod n and waits for (rank-2^k) mod n.
func (c *Comm) barrierDissemination(seq uint64) error {
	n := c.Size()
	me := c.Rank()
	for k, mask := 0, 1; mask < n; k, mask = k+1, mask<<1 {
		to := (me + mask) % n
		from := (me - mask + n) % n
		if err := c.ep.Send(to, tag(kindBarrier, seq, k), nil); err != nil {
			return fmt.Errorf("collective: dissemination send: %w", err)
		}
		if _, err := c.ep.Recv(from, tag(kindBarrier, seq, k)); err != nil {
			return fmt.Errorf("collective: dissemination recv: %w", err)
		}
	}
	return nil
}

// highestBit returns the most significant set bit of v > 0.
func highestBit(v int) int {
	return 1 << (bits.Len(uint(v)) - 1)
}

// bitIndex returns log2 of a power-of-two mask (used as a sub-tag).
func bitIndex(mask int) int {
	return bits.Len(uint(mask)) - 1
}
