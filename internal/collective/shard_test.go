package collective

import (
	"bytes"
	"fmt"
	"testing"
)

// shardCases sweeps the fan-outs and group sizes the sharded paths must
// survive: non-trivial trees (depth >= 2), leaf-heavy last levels, and
// group sizes that are neither powers of the fan-out nor of two.
var shardCases = []struct{ n, k int }{
	{3, 2}, {4, 2}, {5, 2}, {8, 2}, {9, 2},
	{7, 3}, {9, 3}, {13, 3},
	{16, 4}, {17, 4},
}

func TestShardedBarrier(t *testing.T) {
	for _, tc := range shardCases {
		tc := tc
		t.Run(fmt.Sprintf("n%d_k%d", tc.n, tc.k), func(t *testing.T) {
			// Two back-to-back barriers with skewed entry: any arrive/release
			// mismatch across the tree deadlocks or cross-talks (and the
			// per-op sequence numbers would catch a leaked message).
			spmd(t, tc.n, func(c *Comm) error {
				c.SetFanout(tc.k)
				c.Endpoint().Clock().Advance(float64(c.Rank()) * 0.25)
				if err := c.Barrier(); err != nil {
					return err
				}
				return c.Barrier()
			})
		})
	}
}

func TestShardedBcast(t *testing.T) {
	for _, tc := range shardCases {
		for _, root := range []int{0, tc.n - 1} {
			tc, root := tc, root
			t.Run(fmt.Sprintf("n%d_k%d_root%d", tc.n, tc.k, root), func(t *testing.T) {
				spmd(t, tc.n, func(c *Comm) error {
					c.SetFanout(tc.k)
					var data []byte
					if c.Rank() == root {
						data = []byte("sharded payload")
					}
					got, err := c.Bcast(root, data)
					if err != nil {
						return err
					}
					if string(got) != "sharded payload" {
						return fmt.Errorf("rank %d got %q", c.Rank(), got)
					}
					return nil
				})
			})
		}
	}
}

func TestShardedGatherScatterv(t *testing.T) {
	for _, tc := range shardCases {
		for _, root := range []int{0, tc.n / 2} {
			tc, root := tc, root
			t.Run(fmt.Sprintf("n%d_k%d_root%d", tc.n, tc.k, root), func(t *testing.T) {
				spmd(t, tc.n, func(c *Comm) error {
					c.SetFanout(tc.k)
					me := c.Rank()
					// Gather: rank r contributes r+1 copies of byte r.
					mine := bytes.Repeat([]byte{byte(me)}, me+1)
					parts, err := c.Gather(root, mine)
					if err != nil {
						return err
					}
					if me != root {
						if parts != nil {
							return fmt.Errorf("rank %d: non-root gather returned parts", me)
						}
					} else {
						for r, p := range parts {
							want := bytes.Repeat([]byte{byte(r)}, r+1)
							if !bytes.Equal(p, want) {
								return fmt.Errorf("gather root: rank %d part %v, want %v", r, p, want)
							}
						}
					}
					// Scatterv the same shape back out.
					var out [][]byte
					if me == root {
						out = parts
					}
					got, err := c.Scatterv(root, out)
					if err != nil {
						return err
					}
					if !bytes.Equal(got, mine) {
						return fmt.Errorf("rank %d scatterv got %v, want %v", me, got, mine)
					}
					return nil
				})
			})
		}
	}
}

func TestShardedReduceAllreduce(t *testing.T) {
	for _, tc := range shardCases {
		tc := tc
		t.Run(fmt.Sprintf("n%d_k%d", tc.n, tc.k), func(t *testing.T) {
			wantSum := float64(tc.n*(tc.n+1)) / 2
			spmd(t, tc.n, func(c *Comm) error {
				c.SetFanout(tc.k)
				v := float64(c.Rank() + 1)
				sum, err := c.Reduce(0, v, OpSum)
				if err != nil {
					return err
				}
				if c.Rank() == 0 && sum != wantSum {
					return fmt.Errorf("reduce sum %v, want %v", sum, wantSum)
				}
				max, err := c.Allreduce(v, OpMax)
				if err != nil {
					return err
				}
				if max != float64(tc.n) {
					return fmt.Errorf("rank %d allreduce max %v, want %v", c.Rank(), max, tc.n)
				}
				return nil
			})
		})
	}
}

func TestShardedAllgatherAlltoallv(t *testing.T) {
	for _, tc := range shardCases {
		tc := tc
		t.Run(fmt.Sprintf("n%d_k%d", tc.n, tc.k), func(t *testing.T) {
			spmd(t, tc.n, func(c *Comm) error {
				c.SetFanout(tc.k)
				me, n := c.Rank(), c.Size()
				all, err := c.Allgather([]byte{byte(me), byte(me + 1)})
				if err != nil {
					return err
				}
				for r, p := range all {
					if !bytes.Equal(p, []byte{byte(r), byte(r + 1)}) {
						return fmt.Errorf("allgather rank %d entry %v", r, p)
					}
				}
				bufs := make([][]byte, n)
				for r := range bufs {
					bufs[r] = []byte{byte(me), byte(r)}
				}
				out, err := c.Alltoallv(bufs)
				if err != nil {
					return err
				}
				for r, p := range out {
					if !bytes.Equal(p, []byte{byte(r), byte(me)}) {
						return fmt.Errorf("alltoallv from %d: %v", r, p)
					}
				}
				return nil
			})
		})
	}
}
