// Package collective implements the group communication operations the
// d/stream library needs — barrier, broadcast, gather, allgather,
// all-to-all (vector), and reductions — on top of the comm package's
// point-to-point messages, mirroring the NX/CMMD collective calls the paper's
// implementation used on the Paragon and CM-5.
//
// SPMD discipline: every rank must invoke the same sequence of collective
// operations. Each operation consumes one slot of a per-communicator
// sequence number which is baked into the message tags, so collectives can
// never cross-talk with each other or with user point-to-point traffic.
//
// Synchronizing operations (Barrier, Bcast, Allgather, Allreduce, Alltoallv)
// equalize virtual clocks across the group: every participant leaves at the
// same virtual time, the deterministic completion time of the slowest
// participant plus the operation's communication cost.
package collective

import (
	"encoding/binary"
	"fmt"
	"math"

	"pcxxstreams/internal/bufpool"
	"pcxxstreams/internal/comm"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

// Tag layout: 8 bits op kind | 40 bits sequence | 16 bits sub-index.
const (
	kindBarrier uint64 = iota + 1
	kindBcast
	kindGather
	kindAlltoall
	kindReduce
)

func tag(kind, seq uint64, sub int) uint64 {
	return kind<<56 | (seq&0xFFFFFFFFFF)<<16 | uint64(sub)&0xFFFF
}

// Comm is one rank's handle on the collective communicator.
type Comm struct {
	ep  *comm.Endpoint
	seq uint64
	alg Algorithm
	// fanout, when >= 2, reshapes the funnel operations onto a k-ary tree
	// (see shard.go). Must be set identically on every rank.
	fanout int
	// maxMsg, when positive, bounds one point-to-point payload inside the
	// large-vector collectives (Alltoallv): bigger contributions travel as a
	// framed chunk train. Must be set identically on every rank.
	maxMsg int

	// Observability. mon is inherited from the endpoint; ops caches the
	// per-operation metric handles. Like every Comm field, ops is touched
	// only by the owning node's goroutine.
	mon *dsmon.Monitor
	ops map[string]opMetrics

	// tbuf is the scratch frame for the 8-byte timestamp payloads every
	// synchronizing operation sends. Transports copy payloads before Send
	// returns, so one scratch per communicator suffices.
	tbuf [8]byte
}

// opMetrics is the cached pair of handles for one collective operation.
type opMetrics struct {
	count *dsmon.Counter
	lat   *dsmon.Histogram
}

// New wraps an endpoint in a collective communicator. If the endpoint
// carries a dsmon.Monitor, collective operations are timed into
// collective_latency_seconds{op=…} and recorded as collective-category
// spans.
func New(ep *comm.Endpoint) *Comm {
	return &Comm{ep: ep, mon: ep.Monitor(), ops: make(map[string]opMetrics)}
}

// instrument begins timing one collective operation; the returned func
// closes the measurement at the operation's exit. Composite operations
// (Allgather, Allreduce, Alltoallv's closing barrier) nest: each layer is
// accounted under its own op label, so the histogram is a cost account
// per primitive, not an exclusive-time decomposition.
func (c *Comm) instrument(op string) func() {
	f, _ := c.instrumentSpan(op)
	return f
}

// instrumentSpan is instrument plus a pre-reserved span ID (0 when the
// monitor does not trace) so the operation can publish causal edges that
// reference its own span before the span's end time is known.
func (c *Comm) instrumentSpan(op string) (func(), trace.SpanID) {
	if c.mon == nil {
		return func() {}, 0
	}
	m, ok := c.ops[op]
	if !ok {
		reg := c.mon.Registry()
		m = opMetrics{
			count: reg.Counter("collective_ops_total", "collective operations entered", "op", op),
			lat: reg.Histogram("collective_latency_seconds",
				"virtual seconds from operation entry to group release", dsmon.LatencyBuckets, "op", op),
		}
		c.ops[op] = m
	}
	m.count.Inc()
	start := c.ep.Clock().Now()
	rec := c.mon.Recorder()
	id := rec.NewSpanID()
	return func() {
		end := c.ep.Clock().Now()
		m.lat.Observe(end - start)
		if rec != nil {
			rec.AddSpanID(id, c.Rank(), "collective", op, start, end)
		} else {
			c.mon.Span(c.Rank(), "collective", op, start, end)
		}
	}, id
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.ep.Rank() }

// Size returns the number of ranks in the group.
func (c *Comm) Size() int { return c.ep.Size() }

// Endpoint exposes the underlying endpoint for point-to-point use.
func (c *Comm) Endpoint() *comm.Endpoint { return c.ep }

func (c *Comm) next() uint64 {
	c.seq++
	return c.seq
}

// timeFrame encodes t into the communicator's scratch frame. The result is
// valid only until the next timeFrame call — pass it straight to Send.
func (c *Comm) timeFrame(t float64) []byte {
	binary.LittleEndian.PutUint64(c.tbuf[:], math.Float64bits(t))
	return c.tbuf[:]
}

// appendTime appends t's 8-byte encoding to dst.
func appendTime(dst []byte, t float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(t))
}

func decodeTime(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// releaseTime computes the equalized exit timestamp for a root about to
// send n sequential release messages of size bytes each: the latest arrival
// time any receiver will compute. The loop replicates, operation for
// operation, the floating-point arithmetic performed by Endpoint.Send
// (repeated Advance) and Endpoint.Recv (arrival = sendTime + latency +
// transfer), so that the timestamp carried in the release payload is exactly
// the maximum of the receivers' locally computed arrival times — bit-equal
// clock equalization, not merely approximate.
func (c *Comm) releaseTime(n int, size int) float64 {
	p := c.ep.Profile()
	t := c.ep.Clock().Now()
	transfer := vtime.TransferTime(int64(size), p.MsgBW)
	rel := t
	for i := 0; i < n; i++ {
		t += p.SendOverhead
		if arrival := t + p.MsgLatency + transfer; arrival > rel {
			rel = arrival
		}
	}
	return rel
}

// Barrier blocks until all ranks arrive. Under the Linear algorithm every
// rank leaves at the same virtual time; the Tree (dissemination) variant
// releases ranks within O(log P) message latencies of each other.
func (c *Comm) Barrier() error {
	done, sid := c.instrumentSpan("barrier")
	defer done()
	seq := c.next()
	n := c.Size()
	if n == 1 {
		return nil
	}
	if c.sharded() {
		return c.barrierKary(seq)
	}
	if c.alg == Tree {
		return c.barrierDissemination(seq)
	}
	me := c.Rank()
	// Span-level fan-in/fan-out: each rank's barrier span is linked to the
	// root's — arrivals point at the root, releases point back out — so the
	// causal graph shows the synchronization funnel directly, on top of the
	// per-message edges the endpoint records underneath.
	rec := c.mon.Recorder()
	if me == 0 {
		for r := 1; r < n; r++ {
			if _, err := c.ep.Recv(r, tag(kindBarrier, seq, 0)); err != nil {
				return fmt.Errorf("collective: barrier gather: %w", err)
			}
			rec.FlowIn(trace.FlowKey{Kind: "barrier-arrive", A: r, B: 0, Tag: tag(kindBarrier, seq, 0)}, sid)
		}
		rel := c.releaseTime(n-1, 8)
		payload := c.timeFrame(rel)
		for r := 1; r < n; r++ {
			if err := c.ep.Send(r, tag(kindBarrier, seq, 1), payload); err != nil {
				return fmt.Errorf("collective: barrier release: %w", err)
			}
			rec.FlowOut(trace.FlowKey{Kind: "barrier-release", A: 0, B: r, Tag: tag(kindBarrier, seq, 1)}, sid)
		}
		c.ep.Clock().SyncTo(rel)
		return nil
	}
	if err := c.ep.Send(0, tag(kindBarrier, seq, 0), nil); err != nil {
		return fmt.Errorf("collective: barrier arrive: %w", err)
	}
	rec.FlowOut(trace.FlowKey{Kind: "barrier-arrive", A: me, B: 0, Tag: tag(kindBarrier, seq, 0)}, sid)
	d, err := c.ep.Recv(0, tag(kindBarrier, seq, 1))
	if err != nil {
		return fmt.Errorf("collective: barrier release: %w", err)
	}
	rec.FlowIn(trace.FlowKey{Kind: "barrier-release", A: 0, B: me, Tag: tag(kindBarrier, seq, 1)}, sid)
	c.ep.Clock().SyncTo(decodeTime(d))
	bufpool.Put(d)
	return nil
}

// Bcast distributes root's data to every rank and returns it (the root
// returns its own slice). All ranks leave at the same virtual time.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	defer c.instrument("bcast")()
	seq := c.next()
	n := c.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("collective: bcast root %d out of range", root)
	}
	if n == 1 {
		return data, nil
	}
	if c.sharded() {
		return c.bcastKary(seq, root, data)
	}
	if c.alg == Tree {
		return c.bcastTree(seq, root, data)
	}
	if c.Rank() == root {
		// 8-byte equalization prefix + payload, assembled in a pooled frame
		// released once every copy is on the wire.
		rel := c.releaseTime(n-1, 8+len(data))
		payload := append(appendTime(bufpool.GetCap(8+len(data)), rel), data...)
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			if err := c.ep.Send(r, tag(kindBcast, seq, 0), payload); err != nil {
				bufpool.Put(payload)
				return nil, fmt.Errorf("collective: bcast send: %w", err)
			}
		}
		bufpool.Put(payload)
		c.ep.Clock().SyncTo(rel)
		return data, nil
	}
	d, err := c.ep.Recv(root, tag(kindBcast, seq, 0))
	if err != nil {
		return nil, fmt.Errorf("collective: bcast recv: %w", err)
	}
	if len(d) < 8 {
		return nil, fmt.Errorf("collective: bcast short frame (%d bytes)", len(d))
	}
	c.ep.Clock().SyncTo(decodeTime(d[:8]))
	return d[8:], nil
}

// Gather collects each rank's data at root. At root the result has Size()
// entries in rank order (root's own entry aliases data); other ranks get
// nil. Gather does not synchronize the senders.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	defer c.instrument("gather")()
	seq := c.next()
	n := c.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("collective: gather root %d out of range", root)
	}
	if c.sharded() {
		return c.gatherKary(seq, root, data)
	}
	if c.Rank() != root {
		if err := c.ep.Send(root, tag(kindGather, seq, 0), data); err != nil {
			return nil, fmt.Errorf("collective: gather send: %w", err)
		}
		return nil, nil
	}
	out := make([][]byte, n)
	out[root] = data
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		d, err := c.ep.Recv(r, tag(kindGather, seq, 0))
		if err != nil {
			return nil, fmt.Errorf("collective: gather recv from %d: %w", r, err)
		}
		out[r] = d
	}
	return out, nil
}

// Allgather collects every rank's data on every rank. The Linear algorithm
// gathers at rank 0 and broadcasts the concatenation (synchronizing
// everyone); the Tree algorithm uses recursive doubling for power-of-two
// group sizes — log P exchange rounds, no root bottleneck — and falls back
// to gather+tree-broadcast otherwise.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	defer c.instrument("allgather")()
	if c.alg == Tree && c.Size()&(c.Size()-1) == 0 && c.Size() > 1 {
		return c.allgatherRD(c.next(), data)
	}
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var flat []byte
	if c.Rank() == 0 {
		flat = flatten(parts)
		for r, p := range parts {
			if r != 0 {
				bufpool.Put(p) // gathered frames are fully copied into flat
			}
		}
	}
	flat, err = c.Bcast(0, flat)
	if err != nil {
		return nil, err
	}
	return unflatten(flat)
}

// Scatterv delivers parts[j] from root to rank j and returns the caller's
// part. Only root supplies parts; other ranks pass nil. Receivers
// synchronize with root; ranks do not synchronize with each other (matching
// NX csend/crecv semantics).
func (c *Comm) Scatterv(root int, parts [][]byte) ([]byte, error) {
	defer c.instrument("scatterv")()
	seq := c.next()
	n := c.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("collective: scatterv root %d out of range", root)
	}
	if c.sharded() {
		return c.scattervKary(seq, root, parts)
	}
	if c.Rank() == root {
		if len(parts) != n {
			return nil, fmt.Errorf("collective: scatterv got %d parts for %d ranks", len(parts), n)
		}
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			if err := c.ep.Send(r, tag(kindGather, seq, 1), parts[r]); err != nil {
				return nil, fmt.Errorf("collective: scatterv send to %d: %w", r, err)
			}
		}
		own := bufpool.Get(len(parts[root]))
		copy(own, parts[root])
		return own, nil
	}
	d, err := c.ep.Recv(root, tag(kindGather, seq, 1))
	if err != nil {
		return nil, fmt.Errorf("collective: scatterv recv: %w", err)
	}
	return d, nil
}

// SetMaxMsgBytes bounds one point-to-point payload inside the large-vector
// collectives; contributions larger than n are framed into a chunk train of
// at most n data bytes per message. Zero (the default) disables chunking.
// Every rank of the group must use the same setting — the framing is part
// of the wire protocol.
func (c *Comm) SetMaxMsgBytes(n int) *Comm {
	c.maxMsg = n
	return c
}

// MaxMsgBytes reports the active chunking bound (0 = unchunked).
func (c *Comm) MaxMsgBytes() int { return c.maxMsg }

// vecChunk returns the chunk size used for a payload of total bytes: at
// least maxMsg, raised so the chunk count fits the 16-bit sub-index space of
// the tag layout. Deterministic from (maxMsg, total), so sender and receiver
// agree without negotiation.
func (c *Comm) vecChunk(total int) int {
	chunk := c.maxMsg
	const maxChunks = 1 << 15 // sub 0 is the header frame; keep headroom
	if need := (total + maxChunks - 1) / maxChunks; chunk < need {
		chunk = need
	}
	return chunk
}

// sendVec sends one alltoallv contribution. Unchunked mode (maxMsg == 0)
// sends the payload as a single message. Chunked mode frames it: sub 0
// carries a u32 total length plus the first chunk; subsequent chunks ride
// sub 1, 2, … — so arbitrarily large contributions never exceed the
// configured message bound.
func (c *Comm) sendVec(to int, seq uint64, data []byte) error {
	if c.maxMsg <= 0 {
		return c.ep.Send(to, tag(kindAlltoall, seq, 0), data)
	}
	chunk := c.vecChunk(len(data))
	first := len(data)
	if first > chunk {
		first = chunk
	}
	frame := bufpool.Get(4 + first)
	binary.LittleEndian.PutUint32(frame, uint32(len(data)))
	copy(frame[4:], data[:first])
	err := c.ep.Send(to, tag(kindAlltoall, seq, 0), frame)
	bufpool.Put(frame)
	if err != nil {
		return err
	}
	for sub, off := 1, first; off < len(data); sub++ {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := c.ep.Send(to, tag(kindAlltoall, seq, sub), data[off:end]); err != nil {
			return err
		}
		off = end
	}
	return nil
}

// recvVec receives one alltoallv contribution, reassembling the chunk train
// when chunking is on.
func (c *Comm) recvVec(from int, seq uint64) ([]byte, error) {
	d, err := c.ep.Recv(from, tag(kindAlltoall, seq, 0))
	if err != nil {
		return nil, err
	}
	if c.maxMsg <= 0 {
		return d, nil
	}
	if len(d) < 4 {
		return nil, fmt.Errorf("collective: alltoallv header frame too short (%d bytes)", len(d))
	}
	total := int(binary.LittleEndian.Uint32(d))
	out := d[4:]
	if len(out) > total {
		return nil, fmt.Errorf("collective: alltoallv first chunk overruns total (%d > %d)", len(out), total)
	}
	if len(out) < total {
		// Reassemble into one pooled buffer, releasing the header frame and
		// each consumed chunk as soon as its bytes are copied out.
		buf := append(bufpool.GetCap(total), out...)
		bufpool.Put(d)
		out = buf
		for sub := 1; len(out) < total; sub++ {
			d, err := c.ep.Recv(from, tag(kindAlltoall, seq, sub))
			if err != nil {
				bufpool.Put(out)
				return nil, err
			}
			if len(out)+len(d) > total {
				bufpool.Put(d)
				bufpool.Put(out)
				return nil, fmt.Errorf("collective: alltoallv chunk %d overruns total", sub)
			}
			out = append(out, d...)
			bufpool.Put(d)
		}
	}
	return out, nil
}

// Alltoallv delivers bufs[j] from each rank to rank j; the result holds, in
// rank order, what every rank sent to the caller. len(bufs) must equal
// Size(). All ranks leave synchronized (a barrier closes the exchange, as
// with a synchronized NX exchange). Contributions larger than the configured
// message bound (SetMaxMsgBytes) are chunked transparently.
func (c *Comm) Alltoallv(bufs [][]byte) ([][]byte, error) {
	defer c.instrument("alltoallv")()
	n := c.Size()
	if len(bufs) != n {
		return nil, fmt.Errorf("collective: alltoallv got %d buffers for %d ranks", len(bufs), n)
	}
	seq := c.next()
	me := c.Rank()
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		if err := c.sendVec(r, seq, bufs[r]); err != nil {
			return nil, fmt.Errorf("collective: alltoallv send to %d: %w", r, err)
		}
	}
	out := make([][]byte, n)
	// Receive own contribution by copy, matching wire semantics. Every out
	// entry is owned by the caller, which may bufpool.Put it once consumed.
	own := bufpool.Get(len(bufs[me]))
	copy(own, bufs[me])
	out[me] = own
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		d, err := c.recvVec(r, seq)
		if err != nil {
			return nil, fmt.Errorf("collective: alltoallv recv from %d: %w", r, err)
		}
		out[r] = d
	}
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReduceOp selects the reduction operator for the float64 reductions.
type ReduceOp uint8

const (
	// OpSum adds contributions.
	OpSum ReduceOp = iota
	// OpMax keeps the maximum contribution.
	OpMax
	// OpMin keeps the minimum contribution.
	OpMin
)

func (op ReduceOp) apply(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	panic(fmt.Sprintf("collective: unknown reduce op %d", op))
}

// Reduce combines every rank's value at root. Non-root ranks receive the
// zero value and do not synchronize.
func (c *Comm) Reduce(root int, v float64, op ReduceOp) (float64, error) {
	defer c.instrument("reduce")()
	seq := c.next()
	n := c.Size()
	if root < 0 || root >= n {
		return 0, fmt.Errorf("collective: reduce root %d out of range", root)
	}
	if c.sharded() {
		return c.reduceKary(seq, root, v, op)
	}
	if c.alg == Tree {
		return c.reduceTree(seq, root, v, op)
	}
	if c.Rank() != root {
		if err := c.ep.Send(root, tag(kindReduce, seq, 0), c.timeFrame(v)); err != nil {
			return 0, fmt.Errorf("collective: reduce send: %w", err)
		}
		return 0, nil
	}
	acc := v
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		d, err := c.ep.Recv(r, tag(kindReduce, seq, 0))
		if err != nil {
			return 0, fmt.Errorf("collective: reduce recv from %d: %w", r, err)
		}
		acc = op.apply(acc, decodeTime(d))
		bufpool.Put(d)
	}
	return acc, nil
}

// Allreduce combines every rank's value and returns the result everywhere.
// All ranks leave synchronized.
func (c *Comm) Allreduce(v float64, op ReduceOp) (float64, error) {
	defer c.instrument("allreduce")()
	acc, err := c.Reduce(0, v, op)
	if err != nil {
		return 0, err
	}
	var payload []byte
	if c.Rank() == 0 {
		payload = c.timeFrame(acc)
	}
	payload, err = c.Bcast(0, payload)
	if err != nil {
		return 0, err
	}
	return decodeTime(payload), nil
}

// flatten encodes parts as [u32 count][u32 len_i]*[bytes_i]*.
func flatten(parts [][]byte) []byte {
	total := 4 + 4*len(parts)
	for _, p := range parts {
		total += len(p)
	}
	out := make([]byte, 4, total)
	binary.LittleEndian.PutUint32(out, uint32(len(parts)))
	for _, p := range parts {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(p)))
		out = append(out, l[:]...)
	}
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func unflatten(flat []byte) ([][]byte, error) {
	if len(flat) < 4 {
		return nil, fmt.Errorf("collective: unflatten short header")
	}
	n := int(binary.LittleEndian.Uint32(flat))
	off := 4
	lens := make([]int, n)
	for i := 0; i < n; i++ {
		if off+4 > len(flat) {
			return nil, fmt.Errorf("collective: unflatten truncated lengths")
		}
		lens[i] = int(binary.LittleEndian.Uint32(flat[off:]))
		off += 4
	}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if off+lens[i] > len(flat) {
			return nil, fmt.Errorf("collective: unflatten truncated payload %d", i)
		}
		out[i] = flat[off : off+lens[i] : off+lens[i]]
		off += lens[i]
	}
	if off != len(flat) {
		return nil, fmt.Errorf("collective: unflatten %d trailing bytes", len(flat)-off)
	}
	return out, nil
}
