package unbuffered

import (
	"fmt"
	"testing"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

func fillColl(n *machine.Node, d *distr.Distribution, particles int) (*collection.Collection[scf.Segment], error) {
	c, err := collection.New[scf.Segment](n, d)
	if err != nil {
		return nil, err
	}
	c.Apply(func(g int, s *scf.Segment) { s.Fill(g, particles) })
	return c, nil
}

func TestRoundTrip(t *testing.T) {
	const particles = 7
	fs := pfs.NewMemFS(vtime.Challenge())
	_, err := machine.Run(machine.Config{NProcs: 3, Profile: vtime.Challenge(), FS: fs},
		func(n *machine.Node) error {
			d, _ := distr.New(10, 3, distr.Cyclic, 0)
			c, err := fillColl(n, d, particles)
			if err != nil {
				return err
			}
			if err := WriteSegments(n, c, "raw", particles); err != nil {
				return err
			}
			back, err := collection.New[scf.Segment](n, d)
			if err != nil {
				return err
			}
			if err := ReadSegments(n, back, "raw", particles); err != nil {
				return err
			}
			var bad error
			back.Apply(func(g int, s *scf.Segment) {
				var want scf.Segment
				want.Fill(g, particles)
				if !s.Equal(&want) {
					bad = fmt.Errorf("global %d mismatch", g)
				}
			})
			return bad
		})
	if err != nil {
		t.Fatal(err)
	}
	// File is exactly nSegments × RawBytes, dense with no metadata.
	img, err := fs.Image("raw")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(img)) != 10*scf.RawBytes(particles) {
		t.Fatalf("file is %d bytes, want %d", len(img), 10*scf.RawBytes(particles))
	}
}

func TestRejectsWrongParticleCount(t *testing.T) {
	fs := pfs.NewMemFS(vtime.Challenge())
	_, err := machine.Run(machine.Config{NProcs: 1, Profile: vtime.Challenge(), FS: fs},
		func(n *machine.Node) error {
			d, _ := distr.New(2, 1, distr.Block, 0)
			c, err := fillColl(n, d, 5)
			if err != nil {
				return err
			}
			return WriteSegments(n, c, "raw", 9) // declared 9, actual 5
		})
	if err == nil {
		t.Fatal("mismatched particle count accepted")
	}
}

// TestManySmallOps: the defining property of the baseline — one I/O call
// per field per segment, so vastly more ops than the buffered variants.
func TestManySmallOpsCost(t *testing.T) {
	const particles = scf.DefaultParticles
	prof := vtime.Paragon()
	elapsedFor := func(segments int) float64 {
		fs := pfs.NewMemFS(prof)
		res, err := machine.Run(machine.Config{NProcs: 4, Profile: prof, FS: fs},
			func(n *machine.Node) error {
				d, _ := distr.New(segments, 4, distr.Cyclic, 0)
				c, err := fillColl(n, d, particles)
				if err != nil {
					return err
				}
				n.Clock().Reset()
				return WriteSegments(n, c, "raw", particles)
			})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	small, big := elapsedFor(64), elapsedFor(512)
	if big < small*4 {
		t.Fatalf("op-count scaling broken: 64 segs %v, 512 segs %v", small, big)
	}
}
