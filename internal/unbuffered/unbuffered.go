// Package unbuffered is the first baseline of the paper's evaluation
// (§4.3): coding the SCF I/O "using operating system I/O primitives
// directly with no buffering. Application developers often use unbuffered
// I/O to avoid the extra code required for buffering, and this can lead to
// less than optimal I/O performance."
//
// Every field of every segment is moved with its own I/O call — one write
// (or read) per field array per segment — at a file offset the programmer
// computes from the fixed segment size. No metadata is stored.
package unbuffered

import (
	"encoding/binary"
	"fmt"
	"math"

	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/scf"
)

// fixed per-segment layout: count (8 bytes) then the seven raw arrays.
func fieldOffsets(particles int) [8]int64 {
	var offs [8]int64
	offs[0] = 0
	arr := int64(8 * particles)
	for i := 1; i < 8; i++ {
		offs[i] = 8 + int64(i-1)*arr
	}
	return offs
}

func segFields(s *scf.Segment) [7][]float64 {
	return [7][]float64{s.X, s.Y, s.Z, s.VX, s.VY, s.VZ, s.Mass}
}

// WriteSegments writes every locally owned segment with unbuffered
// per-field OS calls. particles must be the uniform per-segment particle
// count (the baselines assume computable sizes, as the paper notes).
func WriteSegments(node *machine.Node, c *collection.Collection[scf.Segment], name string, particles int) error {
	f, err := node.Open(name, true)
	if err != nil {
		return fmt.Errorf("unbuffered: %w", err)
	}
	defer f.Close()
	// All nodes must hold the file before anyone writes, or a slow node's
	// truncate-on-open could wipe a fast node's data.
	if err := node.Comm().Barrier(); err != nil {
		return fmt.Errorf("unbuffered: open sync: %w", err)
	}
	segBytes := scf.RawBytes(particles)
	offs := fieldOffsets(particles)
	var scratch [8]byte
	arrBuf := make([]byte, 8*particles)

	var werr error
	c.Apply(func(g int, s *scf.Segment) {
		if werr != nil {
			return
		}
		if int(s.NumberOfParticles) != particles {
			werr = fmt.Errorf("unbuffered: segment %d has %d particles, expected %d",
				g, s.NumberOfParticles, particles)
			return
		}
		base := int64(g) * segBytes
		binary.LittleEndian.PutUint64(scratch[:], uint64(s.NumberOfParticles))
		if werr = f.WriteAt(scratch[:], base+offs[0]); werr != nil {
			return
		}
		for fi, arr := range segFields(s) {
			for i, v := range arr {
				binary.LittleEndian.PutUint64(arrBuf[8*i:], math.Float64bits(v))
			}
			if werr = f.WriteAt(arrBuf[:8*len(arr)], base+offs[fi+1]); werr != nil {
				return
			}
		}
	})
	if werr != nil {
		return werr
	}
	return node.Comm().Barrier()
}

// ReadSegments reads every locally owned segment back with per-field OS
// calls, mirroring WriteSegments.
func ReadSegments(node *machine.Node, c *collection.Collection[scf.Segment], name string, particles int) error {
	f, err := node.Open(name, false)
	if err != nil {
		return fmt.Errorf("unbuffered: %w", err)
	}
	defer f.Close()
	segBytes := scf.RawBytes(particles)
	offs := fieldOffsets(particles)
	var scratch [8]byte
	arrBuf := make([]byte, 8*particles)

	var rerr error
	c.Apply(func(g int, s *scf.Segment) {
		if rerr != nil {
			return
		}
		base := int64(g) * segBytes
		if rerr = f.ReadAt(scratch[:], base+offs[0]); rerr != nil {
			return
		}
		s.NumberOfParticles = int64(binary.LittleEndian.Uint64(scratch[:]))
		fields := [7]*[]float64{&s.X, &s.Y, &s.Z, &s.VX, &s.VY, &s.VZ, &s.Mass}
		for fi, fp := range fields {
			if rerr = f.ReadAt(arrBuf, base+offs[fi+1]); rerr != nil {
				return
			}
			arr := make([]float64, particles)
			for i := range arr {
				arr[i] = math.Float64frombits(binary.LittleEndian.Uint64(arrBuf[8*i:]))
			}
			*fp = arr
		}
	})
	if rerr != nil {
		return rerr
	}
	return node.Comm().Barrier()
}
