package distr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, n, p int, m Mode, b int) *Distribution {
	t.Helper()
	d, err := New(n, p, m, b)
	if err != nil {
		t.Fatalf("New(%d,%d,%v,%d): %v", n, p, m, b, err)
	}
	return d
}

func TestBlockOwnership(t *testing.T) {
	d := mustNew(t, 10, 3, Block, 0)
	// ceil(10/3)=4: ranks own [0..3], [4..7], [8..9].
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for i, w := range want {
		if got := d.Owner(i); got != w {
			t.Errorf("Owner(%d) = %d, want %d", i, got, w)
		}
	}
	if d.LocalCount(0) != 4 || d.LocalCount(1) != 4 || d.LocalCount(2) != 2 {
		t.Errorf("LocalCounts = %d,%d,%d, want 4,4,2",
			d.LocalCount(0), d.LocalCount(1), d.LocalCount(2))
	}
}

func TestCyclicOwnership(t *testing.T) {
	d := mustNew(t, 12, 4, Cyclic, 0)
	for i := 0; i < 12; i++ {
		if got := d.Owner(i); got != i%4 {
			t.Errorf("Owner(%d) = %d, want %d", i, got, i%4)
		}
		if got := d.LocalIndex(i); got != i/4 {
			t.Errorf("LocalIndex(%d) = %d, want %d", i, got, i/4)
		}
	}
}

func TestBlockCyclicOwnership(t *testing.T) {
	d := mustNew(t, 16, 2, BlockCyclic, 3)
	// blocks of 3: [0-2]→0, [3-5]→1, [6-8]→0, [9-11]→1, [12-14]→0, [15]→1
	want := []int{0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0, 0, 1}
	for i, w := range want {
		if got := d.Owner(i); got != w {
			t.Errorf("Owner(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestInvalidConstructors(t *testing.T) {
	if _, err := New(-1, 4, Block, 0); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := New(10, 0, Block, 0); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := New(10, 2, BlockCyclic, 0); err == nil {
		t.Error("BLOCK_CYCLIC with blockSize 0 accepted")
	}
	if _, err := NewAligned(10, 10, 2, Block, 0, Alignment{Offset: 5, Stride: 1}); err == nil {
		t.Error("alignment outside template accepted")
	}
	if _, err := NewAligned(10, 10, 2, Block, 0, Alignment{Offset: 0, Stride: 0}); err == nil {
		t.Error("zero stride accepted")
	}
}

// TestOwnershipBijection checks that (Owner, LocalIndex) and GlobalIndex are
// inverse bijections for every mode and a spread of shapes — the invariant
// the d/stream read-side redistribution depends on.
func TestOwnershipBijection(t *testing.T) {
	shapes := []struct {
		n, p, b int
		m       Mode
	}{
		{1, 1, 0, Block}, {7, 3, 0, Block}, {12, 4, 0, Block}, {100, 7, 0, Block},
		{7, 3, 0, Cyclic}, {12, 4, 0, Cyclic}, {100, 7, 0, Cyclic},
		{7, 3, 2, BlockCyclic}, {16, 2, 3, BlockCyclic}, {100, 7, 5, BlockCyclic},
		{5, 8, 0, Block}, {5, 8, 0, Cyclic}, {5, 8, 3, BlockCyclic}, // more procs than elems
	}
	for _, s := range shapes {
		d := mustNew(t, s.n, s.p, s.m, s.b)
		seen := make(map[[2]int]bool)
		total := 0
		for i := 0; i < s.n; i++ {
			r, l := d.Owner(i), d.LocalIndex(i)
			if r < 0 || r >= s.p {
				t.Fatalf("%v: Owner(%d)=%d out of range", d, i, r)
			}
			if l < 0 || l >= d.LocalCount(r) {
				t.Fatalf("%v: LocalIndex(%d)=%d out of range [0,%d)", d, i, l, d.LocalCount(r))
			}
			key := [2]int{r, l}
			if seen[key] {
				t.Fatalf("%v: (rank,local)=(%d,%d) assigned twice", d, r, l)
			}
			seen[key] = true
			if back := d.GlobalIndex(r, l); back != i {
				t.Fatalf("%v: GlobalIndex(%d,%d)=%d, want %d", d, r, l, back, i)
			}
		}
		for r := 0; r < s.p; r++ {
			total += d.LocalCount(r)
		}
		if total != s.n {
			t.Fatalf("%v: counts sum to %d, want %d", d, total, s.n)
		}
	}
}

// TestLocalIndexMonotone checks local order follows global order.
func TestLocalIndexMonotone(t *testing.T) {
	for _, m := range []Mode{Block, Cyclic, BlockCyclic} {
		d := mustNew(t, 50, 4, m, 3)
		last := make(map[int]int)
		for r := range last {
			last[r] = -1
		}
		for i := 0; i < 50; i++ {
			r := d.Owner(i)
			l := d.LocalIndex(i)
			if prev, ok := last[r]; ok && l != prev+1 {
				t.Fatalf("%v: rank %d local indices not consecutive: %d after %d", d, r, l, prev)
			}
			last[r] = l
		}
	}
}

// TestAlignedAgainstBruteForce cross-checks the general (aligned) path
// against a brute-force reference.
func TestAlignedAgainstBruteForce(t *testing.T) {
	aligns := []Alignment{
		{Offset: 0, Stride: 1},
		{Offset: 3, Stride: 1},
		{Offset: 0, Stride: 2},
		{Offset: 1, Stride: 3},
	}
	for _, a := range aligns {
		n := 12
		templateN := a.Offset + a.Stride*(n-1) + 1
		for _, m := range []Mode{Block, Cyclic, BlockCyclic} {
			d, err := NewAligned(n, templateN, 3, m, 2, a)
			if err != nil {
				t.Fatalf("NewAligned(%v): %v", a, err)
			}
			// Reference: enumerate template cells.
			for i := 0; i < n; i++ {
				cell := a.Cell(i)
				var want int
				switch m {
				case Block:
					want = cell / ((templateN + 2) / 3)
				case Cyclic:
					want = cell % 3
				case BlockCyclic:
					want = (cell / 2) % 3
				}
				if got := d.Owner(i); got != want {
					t.Errorf("%v Owner(%d) = %d, want %d", d, i, got, want)
				}
			}
		}
	}
}

// TestSameLayout covers the fast path and a structural comparison.
func TestSameLayout(t *testing.T) {
	a := mustNew(t, 20, 4, Cyclic, 0)
	b := mustNew(t, 20, 4, Cyclic, 0)
	if !a.SameLayout(b) {
		t.Error("identical distributions reported different")
	}
	// BLOCK_CYCLIC with blockSize 1 is element-wise identical to CYCLIC.
	c := mustNew(t, 20, 4, BlockCyclic, 1)
	if !a.SameLayout(c) {
		t.Error("CYCLIC vs BLOCK_CYCLIC(1) should be the same layout")
	}
	d := mustNew(t, 20, 4, Block, 0)
	if a.SameLayout(d) {
		t.Error("CYCLIC vs BLOCK reported same")
	}
	e := mustNew(t, 20, 2, Cyclic, 0)
	if a.SameLayout(e) {
		t.Error("different nprocs reported same")
	}
	if a.SameLayout(nil) {
		t.Error("nil comparison reported same")
	}
}

// Property test: bijection holds for random shapes.
func TestOwnershipBijectionQuick(t *testing.T) {
	f := func(nSeed, pSeed, bSeed uint8, mSeed uint8) bool {
		n := int(nSeed)%200 + 1
		p := int(pSeed)%16 + 1
		b := int(bSeed)%7 + 1
		m := Mode(mSeed % 3)
		d, err := New(n, p, m, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if d.GlobalIndex(d.Owner(i), d.LocalIndex(i)) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalElements(t *testing.T) {
	d := mustNew(t, 10, 3, Cyclic, 0)
	got := d.LocalElements(1)
	want := []int{1, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("LocalElements(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LocalElements(1) = %v, want %v", got, want)
		}
	}
}

func TestPanicsOnOutOfRange(t *testing.T) {
	d := mustNew(t, 10, 3, Block, 0)
	for _, f := range []func(){
		func() { d.Owner(-1) },
		func() { d.Owner(10) },
		func() { d.LocalCount(3) },
		func() { d.GlobalIndex(0, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkOwnerCyclic(b *testing.B) {
	d, _ := New(20000, 8, Cyclic, 0)
	r := rand.New(rand.NewSource(1))
	idx := make([]int, 1024)
	for i := range idx {
		idx[i] = r.Intn(20000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Owner(idx[i%len(idx)])
	}
}

func TestExplicitOwnership(t *testing.T) {
	owners := []int{2, 0, 1, 1, 0, 2, 2}
	d, err := NewExplicit(owners, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range owners {
		if got := d.Owner(i); got != o {
			t.Errorf("Owner(%d) = %d, want %d", i, got, o)
		}
	}
	if d.LocalCount(0) != 2 || d.LocalCount(1) != 2 || d.LocalCount(2) != 3 {
		t.Fatalf("counts = %d,%d,%d", d.LocalCount(0), d.LocalCount(1), d.LocalCount(2))
	}
	// Bijection.
	for i := range owners {
		if d.GlobalIndex(d.Owner(i), d.LocalIndex(i)) != i {
			t.Fatalf("bijection broken at %d", i)
		}
	}
	// Local order follows global order.
	if got := d.LocalElements(2); got[0] != 0 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("LocalElements(2) = %v", got)
	}
	if d.Mode != Explicit {
		t.Fatalf("Mode = %v", d.Mode)
	}
	if got := d.Owners(); len(got) != len(owners) || got[0] != 2 {
		t.Fatalf("Owners() = %v", got)
	}
}

func TestExplicitValidation(t *testing.T) {
	if _, err := NewExplicit([]int{0, 3}, 3); err == nil {
		t.Error("out-of-range owner accepted")
	}
	if _, err := NewExplicit([]int{0}, 0); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := New(4, 2, Explicit, 0); err == nil {
		t.Error("New with Explicit mode accepted (must use NewExplicit)")
	}
}

func TestExplicitSameLayout(t *testing.T) {
	a, _ := NewExplicit([]int{0, 1, 0, 1}, 2)
	b, _ := NewExplicit([]int{0, 1, 0, 1}, 2)
	c, _ := New(4, 2, Cyclic, 0)
	if !a.SameLayout(b) {
		t.Error("identical explicit layouts reported different")
	}
	// {0,1,0,1} over 2 procs is element-wise exactly CYCLIC.
	if !a.SameLayout(c) || !c.SameLayout(a) {
		t.Error("explicit table equal to CYCLIC not recognized as same layout")
	}
	d, _ := NewExplicit([]int{1, 0, 0, 1}, 2)
	if a.SameLayout(d) {
		t.Error("different tables reported same")
	}
}

func TestOwnersNilForPatterns(t *testing.T) {
	d := mustNew(t, 8, 2, Block, 0)
	if d.Owners() != nil {
		t.Fatal("pattern distribution returned an owner table")
	}
}

func TestNewBalanced(t *testing.T) {
	// Heavily skewed weights: the first elements are 10x denser.
	weights := make([]float64, 100)
	for i := range weights {
		if i < 20 {
			weights[i] = 10
		} else {
			weights[i] = 1
		}
	}
	d, err := NewBalanced(weights, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Per-rank weight within 2x of each other.
	perRank := make([]float64, 4)
	for i, w := range weights {
		perRank[d.Owner(i)] += w
	}
	lo, hi := perRank[0], perRank[0]
	for _, w := range perRank[1:] {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if hi > 2.2*lo {
		t.Fatalf("weight imbalance: per-rank %v", perRank)
	}
	// Contiguity: owners are non-decreasing.
	prev := 0
	for i := 0; i < 100; i++ {
		o := d.Owner(i)
		if o < prev {
			t.Fatalf("owners not contiguous at %d: %d after %d", i, o, prev)
		}
		prev = o
	}
}

func TestNewBalancedZeroWeights(t *testing.T) {
	d, err := NewBalanced(make([]float64, 12), 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if d.LocalCount(r) != 4 {
			t.Fatalf("rank %d count %d, want 4 (count-balanced fallback)", r, d.LocalCount(r))
		}
	}
	if _, err := NewBalanced([]float64{1, -1}, 2); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestBalancedEmpty(t *testing.T) {
	d, err := NewBalanced(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 0 {
		t.Fatalf("N = %d", d.N)
	}
}
