// Package distr implements HPF-style distributions and alignments for
// one-dimensional distributed arrays, the ownership model underneath pC++
// collections (paper §4: "pC++ provides facilities for specifying HPF-style
// distribution and alignment of collections").
//
// A Distribution maps each global element index of a template of N cells to
// an owning processor and a local slot on that processor. The three HPF
// modes are supported: BLOCK, CYCLIC, and BLOCK_CYCLIC(b). An Alignment maps
// a collection's element index onto a template cell (offset + stride·i), so
// collections of different sizes can share one distribution template, as in
// the paper's ALIGN(dummy[i], d[i]) examples.
package distr

import (
	"errors"
	"fmt"
)

// Mode selects the HPF distribution pattern of a template.
type Mode uint8

const (
	// Block assigns ceil(N/P) consecutive cells to each processor.
	Block Mode = iota
	// Cyclic deals cells to processors round-robin.
	Cyclic
	// BlockCyclic deals blocks of BlockSize cells round-robin.
	BlockCyclic
	// Explicit assigns each element to a processor through an owner table —
	// the escape hatch for layouts the HPF patterns cannot express:
	// multi-dimensional grid distributions (see NewGrid2D in package grid)
	// and load-balanced irregular layouts for variable-density data (see
	// NewBalanced). Explicit tables travel inside d/stream record headers
	// like any other distribution descriptor.
	Explicit
)

func (m Mode) String() string {
	switch m {
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	case BlockCyclic:
		return "BLOCK_CYCLIC"
	case Explicit:
		return "EXPLICIT"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Alignment maps collection index i to template cell Offset + Stride*i.
// The zero value is not valid; use Identity for the common 1:1 case.
type Alignment struct {
	Offset int
	Stride int
}

// Identity is the 1:1 alignment used by most programs.
func Identity() Alignment { return Alignment{Offset: 0, Stride: 1} }

// Cell returns the template cell holding collection element i.
func (a Alignment) Cell(i int) int { return a.Offset + a.Stride*i }

// Distribution describes how N template cells are spread over NProcs
// processors, together with the alignment of the collection onto the
// template. Construct values with New or NewAligned; the closed-form
// ownership math assumes validated fields.
type Distribution struct {
	NProcs    int
	N         int // number of collection elements
	TemplateN int // number of template cells (>= span of the alignment)
	Mode      Mode
	BlockSize int // used by BlockCyclic; ignored otherwise
	Align     Alignment

	// owners is the Explicit-mode owner table (len N); nil otherwise.
	owners []int32

	// localCount[r] caches the number of collection elements owned by rank
	// r. For Explicit mode and non-identity alignments, localIdx and
	// perRank cache the full index maps so ownership queries stay O(1).
	localCount []int
	localIdx   []int32
	perRank    [][]int32
}

// ErrBadDistribution reports invalid constructor arguments.
var ErrBadDistribution = errors.New("distr: invalid distribution")

// New builds a distribution of n elements over nprocs processors with an
// identity alignment. For BlockCyclic, blockSize must be positive; it is
// ignored for the other modes. n may be zero (an empty collection).
func New(n, nprocs int, mode Mode, blockSize int) (*Distribution, error) {
	templateN := n
	if templateN == 0 {
		templateN = 1
	}
	return NewAligned(n, templateN, nprocs, mode, blockSize, Identity())
}

// NewAligned builds a distribution of n collection elements aligned onto a
// template of templateN cells distributed over nprocs processors.
func NewAligned(n, templateN, nprocs int, mode Mode, blockSize int, align Alignment) (*Distribution, error) {
	if n < 0 || nprocs <= 0 || templateN <= 0 {
		return nil, fmt.Errorf("%w: n=%d templateN=%d nprocs=%d", ErrBadDistribution, n, templateN, nprocs)
	}
	if mode == BlockCyclic && blockSize <= 0 {
		return nil, fmt.Errorf("%w: BLOCK_CYCLIC needs blockSize > 0, got %d", ErrBadDistribution, blockSize)
	}
	if mode != BlockCyclic {
		blockSize = 0
	}
	if align.Stride == 0 {
		return nil, fmt.Errorf("%w: alignment stride must be non-zero", ErrBadDistribution)
	}
	if n > 0 {
		lo, hi := align.Cell(0), align.Cell(n-1)
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo < 0 || hi >= templateN {
			return nil, fmt.Errorf("%w: alignment maps outside template (cells %d..%d, template %d)",
				ErrBadDistribution, lo, hi, templateN)
		}
	}
	if mode == Explicit {
		return nil, fmt.Errorf("%w: use NewExplicit for EXPLICIT distributions", ErrBadDistribution)
	}
	d := &Distribution{
		NProcs:    nprocs,
		N:         n,
		TemplateN: templateN,
		Mode:      mode,
		BlockSize: blockSize,
		Align:     align,
	}
	d.finalize()
	return d, nil
}

// NewExplicit builds a distribution from an owner table: owners[i] is the
// rank owning element i. Local order follows global order, as with the HPF
// patterns.
func NewExplicit(owners []int, nprocs int) (*Distribution, error) {
	if nprocs <= 0 {
		return nil, fmt.Errorf("%w: nprocs=%d", ErrBadDistribution, nprocs)
	}
	tbl := make([]int32, len(owners))
	for i, o := range owners {
		if o < 0 || o >= nprocs {
			return nil, fmt.Errorf("%w: owners[%d]=%d out of [0,%d)", ErrBadDistribution, i, o, nprocs)
		}
		tbl[i] = int32(o)
	}
	n := len(owners)
	templateN := n
	if templateN == 0 {
		templateN = 1
	}
	d := &Distribution{
		NProcs:    nprocs,
		N:         n,
		TemplateN: templateN,
		Mode:      Explicit,
		Align:     Identity(),
		owners:    tbl,
	}
	d.finalize()
	return d, nil
}

// NewBalanced partitions n elements with the given per-element weights into
// nprocs contiguous chunks of near-equal total weight — the natural I/O
// distribution for variable-density data (elements stay in order; heavy
// regions get fewer elements per node). Weights must be non-negative.
func NewBalanced(weights []float64, nprocs int) (*Distribution, error) {
	if nprocs <= 0 {
		return nil, fmt.Errorf("%w: nprocs=%d", ErrBadDistribution, nprocs)
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("%w: weights[%d]=%v negative", ErrBadDistribution, i, w)
		}
		total += w
	}
	owners := make([]int, len(weights))
	acc := 0.0
	for i, w := range weights {
		// Cut so that rank r holds weight in [r·total/P, (r+1)·total/P).
		r := 0
		if total > 0 {
			r = int(acc / total * float64(nprocs))
		} else if len(weights) > 0 {
			r = i * nprocs / len(weights) // all-zero weights: balance counts
		}
		if r >= nprocs {
			r = nprocs - 1
		}
		owners[i] = r
		acc += w
	}
	return NewExplicit(owners, nprocs)
}

// Owners returns a copy of the explicit owner table, or nil for pattern
// distributions. Used to encode the distribution into a d/stream record.
func (d *Distribution) Owners() []int32 {
	if d.owners == nil {
		return nil
	}
	out := make([]int32, len(d.owners))
	copy(out, d.owners)
	return out
}

// ownerOf maps a global element index to its owning rank.
func (d *Distribution) ownerOf(i int) int {
	if d.Mode == Explicit {
		return int(d.owners[i])
	}
	return d.ownerCell(d.Align.Cell(i))
}

// finalize builds the cached count and index tables.
func (d *Distribution) finalize() {
	d.localCount = make([]int, d.NProcs)
	needTables := d.Mode == Explicit || d.Align != Identity() || d.N != d.TemplateN
	if needTables {
		d.localIdx = make([]int32, d.N)
		d.perRank = make([][]int32, d.NProcs)
	}
	for i := 0; i < d.N; i++ {
		r := d.ownerOf(i)
		if needTables {
			d.localIdx[i] = int32(d.localCount[r])
			d.perRank[r] = append(d.perRank[r], int32(i))
		}
		d.localCount[r]++
	}
}

// templateBlock returns the BLOCK-mode block length: ceil(TemplateN/NProcs).
func (d *Distribution) templateBlock() int {
	return (d.TemplateN + d.NProcs - 1) / d.NProcs
}

// ownerCell maps a template cell to its owning rank.
func (d *Distribution) ownerCell(cell int) int {
	switch d.Mode {
	case Block:
		return cell / d.templateBlock()
	case Cyclic:
		return cell % d.NProcs
	default: // BlockCyclic
		return (cell / d.BlockSize) % d.NProcs
	}
}

// Owner returns the rank owning collection element i. i must be in [0, N).
func (d *Distribution) Owner(i int) int {
	d.check(i)
	return d.ownerOf(i)
}

// LocalCount returns the number of collection elements owned by rank.
func (d *Distribution) LocalCount(rank int) int {
	if rank < 0 || rank >= d.NProcs {
		panic(fmt.Sprintf("distr: rank %d out of range [0,%d)", rank, d.NProcs))
	}
	return d.localCount[rank]
}

// LocalIndex returns the local slot of element i on its owner: its position
// among the owner's elements in increasing global-index order.
func (d *Distribution) LocalIndex(i int) int {
	d.check(i)
	if d.localIdx != nil {
		return int(d.localIdx[i])
	}
	// Closed forms for the identity-alignment pattern cases.
	owner := d.ownerOf(i)
	switch d.Mode {
	case Block:
		return i - owner*d.templateBlock()
	case Cyclic:
		return i / d.NProcs
	case BlockCyclic:
		b := d.BlockSize
		fullRounds := i / (b * d.NProcs)
		return fullRounds*b + i%b
	}
	panic("distr: LocalIndex: no table for explicit distribution")
}

// GlobalIndex is the inverse of (Owner, LocalIndex): it returns the global
// index of the local-th element owned by rank.
func (d *Distribution) GlobalIndex(rank, local int) int {
	if rank < 0 || rank >= d.NProcs {
		panic(fmt.Sprintf("distr: rank %d out of range [0,%d)", rank, d.NProcs))
	}
	if local < 0 || local >= d.localCount[rank] {
		panic(fmt.Sprintf("distr: local %d out of range [0,%d) on rank %d", local, d.localCount[rank], rank))
	}
	if d.perRank != nil {
		return int(d.perRank[rank][local])
	}
	switch d.Mode {
	case Block:
		return rank*d.templateBlock() + local
	case Cyclic:
		return local*d.NProcs + rank
	case BlockCyclic:
		b := d.BlockSize
		round := local / b
		return round*b*d.NProcs + rank*b + local%b
	}
	panic("distr: GlobalIndex internal inconsistency")
}

// LocalElements returns the global indices owned by rank, in local order.
func (d *Distribution) LocalElements(rank int) []int {
	out := make([]int, 0, d.LocalCount(rank))
	if d.perRank != nil {
		for _, g := range d.perRank[rank] {
			out = append(out, int(g))
		}
		return out
	}
	for j := 0; j < d.N; j++ {
		if d.Owner(j) == rank {
			out = append(out, j)
		}
	}
	return out
}

// SameLayout reports whether two distributions assign every element to the
// same (owner, local slot); when true, a d/stream sorted read can skip the
// redistribution phase entirely.
func (d *Distribution) SameLayout(o *Distribution) bool {
	if o == nil || d.N != o.N || d.NProcs != o.NProcs {
		return false
	}
	if d.Mode == o.Mode && d.BlockSize == o.BlockSize &&
		d.Align == o.Align && d.TemplateN == o.TemplateN &&
		d.Mode != Explicit {
		return true
	}
	for i := 0; i < d.N; i++ {
		if d.Owner(i) != o.Owner(i) || d.LocalIndex(i) != o.LocalIndex(i) {
			return false
		}
	}
	return true
}

func (d *Distribution) check(i int) {
	if i < 0 || i >= d.N {
		panic(fmt.Sprintf("distr: element %d out of range [0,%d)", i, d.N))
	}
}

func (d *Distribution) String() string {
	s := fmt.Sprintf("%s(n=%d,p=%d", d.Mode, d.N, d.NProcs)
	if d.Mode == BlockCyclic {
		s += fmt.Sprintf(",b=%d", d.BlockSize)
	}
	if d.Align != Identity() {
		s += fmt.Sprintf(",align=%d+%d·i/%d", d.Align.Offset, d.Align.Stride, d.TemplateN)
	}
	return s + ")"
}
