package pcxxstreams

// The benchmark harness of the reproduction: one testing.B benchmark per
// table of the paper's Figure 5 (Tables 1-4), plus the ablation benches
// DESIGN.md derives from the paper's design discussion, plus host-side
// micro-benchmarks of the library itself.
//
// The table benches report deterministic *virtual* seconds (the paper's
// metric, from the calibrated platform cost models) via b.ReportMetric;
// wall-clock time of a bench run is the simulator's own cost and is not
// comparable to the paper. Run with:
//
//	go test -bench=Table -benchmem
//	go test -bench=Ablation
//	go test -bench=. -benchmem   # everything

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"pcxxstreams/internal/bench"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/vtime"
)

var printTables sync.Map // table id → once

func benchTable(b *testing.B, id int) {
	spec, err := bench.TableByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res bench.TableResult
	for i := 0; i < b.N; i++ {
		res, err = bench.RunTable(spec, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.CheckShape(); err != nil {
		b.Fatalf("shape violated: %v", err)
	}
	// Print each regenerated table once per `go test` process, side by side
	// with the paper's numbers.
	if _, loaded := printTables.LoadOrStore(id, true); !loaded {
		fmt.Fprintln(os.Stderr)
		res.Format(os.Stderr)
	}
	last := len(spec.Segments) - 1
	b.ReportMetric(res.Streams[last], "vsec-streams")
	b.ReportMetric(res.Manual[last], "vsec-manual")
	b.ReportMetric(res.Unbuffered[last], "vsec-unbuf")
	b.ReportMetric(res.Percent[last], "%ofmanual")
}

// BenchmarkTable1 regenerates Table 1: Intel Paragon, 4 processors.
func BenchmarkTable1(b *testing.B) { benchTable(b, 1) }

// BenchmarkTable2 regenerates Table 2: Intel Paragon, 8 processors.
func BenchmarkTable2(b *testing.B) { benchTable(b, 2) }

// BenchmarkTable3 regenerates Table 3: uniprocessor SGI Challenge.
func BenchmarkTable3(b *testing.B) { benchTable(b, 3) }

// BenchmarkTable4 regenerates Table 4: 8-processor SGI Challenge.
func BenchmarkTable4(b *testing.B) { benchTable(b, 4) }

// --- Ablations (see DESIGN.md §Ablations) ---

// BenchmarkAblationSortedVsUnsorted quantifies §3's claim that unsortedRead
// avoids the interprocessor communication of read.
func BenchmarkAblationSortedVsUnsorted(b *testing.B) {
	var sorted, unsorted float64
	var err error
	for i := 0; i < b.N; i++ {
		sorted, unsorted, err = bench.AblationSortedVsUnsorted(vtime.Paragon(), 4, 512)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sorted, "vsec-sorted")
	b.ReportMetric(unsorted, "vsec-unsorted")
	b.ReportMetric(sorted/unsorted, "sorted/unsorted")
}

// BenchmarkAblationMetadataPath compares §4.1's two metadata strategies on
// a small collection (funnel should win) and a large one (parallel should).
func BenchmarkAblationMetadataPath(b *testing.B) {
	for _, c := range []struct {
		name     string
		segments int
	}{{"small-64segs", 64}, {"large-8192segs", 8192}} {
		b.Run(c.name, func(b *testing.B) {
			var funnel, parallel float64
			var err error
			for i := 0; i < b.N; i++ {
				funnel, parallel, err = bench.AblationMetadataPath(vtime.Paragon(), 8, c.segments)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(funnel, "vsec-funnel")
			b.ReportMetric(parallel, "vsec-parallel")
		})
	}
}

// BenchmarkAblationInterleave compares one interleaved record against one
// record per field array.
func BenchmarkAblationInterleave(b *testing.B) {
	var inter, sep float64
	var err error
	for i := 0; i < b.N; i++ {
		inter, sep, err = bench.AblationInterleave(vtime.Paragon(), 4, 256)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(inter, "vsec-interleaved")
	b.ReportMetric(sep, "vsec-separate")
}

// BenchmarkAblationFlushGranularity sweeps the number of write() flushes
// covering the same data (§4.3: buffering reduces total latency).
func BenchmarkAblationFlushGranularity(b *testing.B) {
	for _, records := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("flushes-%d", records), func(b *testing.B) {
			var secs float64
			var err error
			for i := 0; i < b.N; i++ {
				secs, err = bench.AblationFlushGranularity(vtime.Paragon(), 4, 512, records)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(secs, "vsec")
		})
	}
}

// BenchmarkAblationRedistribute prices the two-phase sorted read's
// redistribution against a same-layout restart.
func BenchmarkAblationRedistribute(b *testing.B) {
	var same, changed float64
	var err error
	for i := 0; i < b.N; i++ {
		same, changed, err = bench.AblationRedistribute(vtime.Paragon(), 512)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(same, "vsec-same-layout")
	b.ReportMetric(changed, "vsec-redistributed")
}

// BenchmarkAblationTransport validates the goroutine/socket substitution:
// virtual results are identical; wall-clock differs (that difference is the
// thing this bench measures).
func BenchmarkAblationTransport(b *testing.B) {
	for _, tr := range []struct {
		name string
		kind machine.TransportKind
	}{{"chan", machine.TransportChan}, {"tcp", machine.TransportTCP}} {
		b.Run(tr.name, func(b *testing.B) {
			var secs float64
			var err error
			for i := 0; i < b.N; i++ {
				secs, err = bench.Seconds(bench.Run{
					Profile: vtime.Challenge(), NProcs: 4, Segments: 128,
					Variant: bench.Streams, Transport: tr.kind,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(secs, "vsec")
		})
	}
}

// --- Host micro-benchmarks of the library itself (wall-clock) ---

// BenchmarkStreamWriteThroughput measures host-side throughput of the full
// insert+write pipeline.
func BenchmarkStreamWriteThroughput(b *testing.B) {
	const segments, nprocs = 256, 4
	bytes := int64(segments) * scf.EncodedBytes(scf.DefaultParticles)
	b.SetBytes(bytes)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Seconds(bench.Run{
			Profile: vtime.Challenge(), NProcs: nprocs, Segments: segments,
			Variant: bench.Streams,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentEncode measures raw element encode speed.
func BenchmarkSegmentEncode(b *testing.B) {
	var s scf.Segment
	s.Fill(1, scf.DefaultParticles)
	b.SetBytes(scf.EncodedBytes(scf.DefaultParticles))
	var e Encoder
	for i := 0; i < b.N; i++ {
		e.Reset()
		s.StreamInsert(&e)
	}
}

// BenchmarkPlatformSweep runs the streams benchmark on all three platform
// profiles (paragon, cm5, challenge) — the CM-5 column is the measurement
// the paper could not take ("CMMD timers do not account for I/O").
func BenchmarkPlatformSweep(b *testing.B) {
	var results []bench.PlatformResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = bench.RunPlatformSweep(4, 512)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		if r.Variant == bench.Streams {
			b.ReportMetric(r.Seconds, "vsec-"+r.Profile)
		}
	}
}

// BenchmarkOpProfile reports the per-variant I/O call counts behind the
// tables at the 512-segment point.
func BenchmarkOpProfile(b *testing.B) {
	var m bench.Measurement
	var err error
	for i := 0; i < b.N; i++ {
		m, err = bench.Measure(bench.Run{
			Profile: vtime.Paragon(), NProcs: 4, Segments: 512, Variant: bench.Unbuffered,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.IO.TotalOps()), "io-ops-unbuffered")
}

// BenchmarkAblationAsyncOverlap quantifies the write-behind extension:
// computation overlapping checkpoint I/O.
func BenchmarkAblationAsyncOverlap(b *testing.B) {
	var syncT, asyncT float64
	var err error
	for i := 0; i < b.N; i++ {
		syncT, asyncT, err = bench.AblationAsyncOverlap(vtime.Paragon(), 4, 512, 4, 0.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(syncT, "vsec-sync")
	b.ReportMetric(asyncT, "vsec-async")
}
