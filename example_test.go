package pcxxstreams_test

// Runnable godoc examples for the façade. Virtual time is deterministic,
// so the printed timings are stable and verified by `go test`.

import (
	"fmt"
	"log"

	pcxx "pcxxstreams"
	"pcxxstreams/internal/scf"
)

// newSharedFS creates one in-memory parallel file system shared by the
// phases of an example.
func newSharedFS() *pcxx.FileSystem {
	return pcxx.NewMemFS(pcxx.Challenge())
}

// reading is the example element type: one fixed field, one variable-sized.
type reading struct {
	Station int64
	Samples []float64
}

func (r *reading) StreamInsert(e *pcxx.Encoder) {
	e.Int64(r.Station)
	e.Float64Slice(r.Samples)
}

func (r *reading) StreamExtract(d *pcxx.Decoder) {
	r.Station = d.Int64()
	r.Samples = d.Float64Slice()
}

// Example_roundTrip is the paper's Figure 3 in miniature: declare a
// distribution, fill a collection, s << g, s.write(), then read it back.
func Example_roundTrip() {
	cfg := pcxx.Config{NProcs: 4, Profile: pcxx.Challenge()}
	_, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(12, 4, pcxx.Cyclic, 0)
		if err != nil {
			return err
		}
		g, err := pcxx.NewCollection[reading](n, d)
		if err != nil {
			return err
		}
		g.Apply(func(global int, r *reading) {
			r.Station = int64(global)
			r.Samples = make([]float64, global%3+1)
		})

		s, err := pcxx.Open(n, d, "grid")
		if err != nil {
			return err
		}
		if err := pcxx.Insert[reading](s, g); err != nil { // s << g
			return err
		}
		if err := s.Write(); err != nil { // s.write()
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		in, err := pcxx.OpenInput(n, d, "grid")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil { // s.read()
			return err
		}
		g2, err := pcxx.NewCollection[reading](n, d)
		if err != nil {
			return err
		}
		if err := pcxx.Extract[reading](in, g2); err != nil { // s >> g
			return err
		}
		count := 0
		g2.Apply(func(global int, r *reading) {
			if r.Station == int64(global) {
				count++
			}
		})
		if n.Rank() == 0 {
			fmt.Printf("node 0 verified %d of its elements\n", count)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: node 0 verified 3 of its elements
}

// Example_checkpointRestart shows the §2 checkpointing task: save under one
// distribution, restore under another on a different node count.
func Example_checkpointRestart() {
	// One shared file system across the two machines.
	fs := newSharedFS()
	shared := pcxx.Config{NProcs: 4, Profile: pcxx.Challenge(), FS: fs}
	var fingerprint float64
	if _, err := pcxx.Run(shared, func(n *pcxx.Node) error {
		d, _ := pcxx.NewDistribution(16, 4, pcxx.Cyclic, 0)
		g, _ := pcxx.NewCollection[scf.Segment](n, d)
		g.Apply(func(gi int, s *scf.Segment) { s.Fill(gi, 5) })
		m, err := pcxx.NewCheckpointManager(n, "ck", 2)
		if err != nil {
			return err
		}
		if err := pcxx.SaveCheckpoint[scf.Segment](m, 7, g); err != nil {
			return err
		}
		local := 0.0
		g.Apply(func(_ int, s *scf.Segment) { local += s.Checksum() })
		total, err := n.Comm().Allreduce(local, 0)
		if n.Rank() == 0 {
			fingerprint = total
		}
		return err
	}); err != nil {
		log.Fatal(err)
	}

	// Phase 2: 3 nodes, BLOCK — the file carries all the paperwork.
	cfg2 := pcxx.Config{NProcs: 3, Profile: pcxx.Challenge(), FS: fs}
	if _, err := pcxx.Run(cfg2, func(n *pcxx.Node) error {
		d, _ := pcxx.NewDistribution(16, 3, pcxx.Block, 0)
		g, _ := pcxx.NewCollection[scf.Segment](n, d)
		epoch, err := pcxx.RestoreCheckpoint[scf.Segment](n, "ck", 2, g)
		if err != nil {
			return err
		}
		local := 0.0
		g.Apply(func(_ int, s *scf.Segment) { local += s.Checksum() })
		total, err := n.Comm().Allreduce(local, 0)
		if err != nil {
			return err
		}
		if n.Rank() == 0 {
			fmt.Printf("restored epoch %d, state matches: %v\n", epoch, total == fingerprint)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	// Output: restored epoch 7, state matches: true
}
