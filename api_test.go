package pcxxstreams

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api_surface.golden from the current source")

const goldenPath = "testdata/api_surface.golden"

// publicSurface renders the exported declarations of the pcxxstreams façade
// from source: files in sorted order, unexported declarations and function
// bodies stripped, comments ignored. The rendering is deterministic, so a
// byte-diff against the golden file is exactly an API diff.
func publicSurface(t *testing.T) []byte {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs["pcxxstreams"]
	if pkg == nil {
		t.Fatalf("package pcxxstreams not found in %v", pkgs)
	}
	ast.PackageExports(pkg)

	names := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "// Public API surface of package pcxxstreams.\n")
	fmt.Fprintf(&buf, "// Regenerate with: go test . -run TestAPISurface -update\n\n")
	cfg := printer.Config{Mode: printer.TabIndent, Tabwidth: 8}
	for _, name := range names {
		f := pkg.Files[name]
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				if len(d.Specs) == 0 {
					continue
				}
			case *ast.FuncDecl:
				d.Body = nil // surface, not implementation
			}
			if err := cfg.Fprint(&buf, fset, d); err != nil {
				t.Fatal(err)
			}
			buf.WriteString("\n\n")
		}
	}
	return buf.Bytes()
}

// TestAPISurface diffs the exported façade against the committed golden
// file, so accidental API breaks (or silent additions) fail make check. On
// an intentional change, regenerate with -update and review the diff in
// code review like any other contract change.
func TestAPISurface(t *testing.T) {
	got := publicSurface(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v — regenerate with: go test . -run TestAPISurface -update", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("public API surface changed at line %d:\n  golden:  %q\n  current: %q\n"+
				"If intentional, regenerate with: go test . -run TestAPISurface -update", i+1, w, g)
		}
	}
	t.Fatal("public API surface changed (length mismatch); regenerate with -update if intentional")
}
