package pcxxstreams

import (
	"errors"
	"fmt"
	"testing"
)

// point is a minimal element type exercising the façade end to end.
type point struct {
	ID  int64
	Pos []float64
}

func (p *point) StreamInsert(e *Encoder) {
	e.Int64(p.ID)
	e.Float64Slice(p.Pos)
}

func (p *point) StreamExtract(d *Decoder) {
	p.ID = d.Int64()
	p.Pos = d.Float64Slice()
}

// TestFacadeRoundTrip drives the whole public API: machine, distribution,
// collection, output stream, input stream with a changed distribution.
func TestFacadeRoundTrip(t *testing.T) {
	cfg := Config{NProcs: 3, Profile: Challenge()}
	_, err := Run(cfg, func(n *Node) error {
		wd, err := NewDistribution(20, 3, Cyclic, 0)
		if err != nil {
			return err
		}
		g, err := NewCollection[point](n, wd)
		if err != nil {
			return err
		}
		g.Apply(func(gl int, p *point) {
			p.ID = int64(gl)
			p.Pos = []float64{float64(gl), float64(gl) * 2}
		})
		s, err := Open(n, wd, "facade")
		if err != nil {
			return err
		}
		if err := Insert[point](s, g); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		rd, err := NewDistribution(20, 3, Block, 0)
		if err != nil {
			return err
		}
		back, err := NewCollection[point](n, rd)
		if err != nil {
			return err
		}
		in, err := OpenInput(n, rd, "facade")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil {
			return err
		}
		if err := Extract[point](in, back); err != nil {
			return err
		}
		var bad error
		back.Apply(func(gl int, p *point) {
			if p.ID != int64(gl) || len(p.Pos) != 2 || p.Pos[1] != float64(gl)*2 {
				bad = fmt.Errorf("global %d corrupted: %+v", gl, *p)
			}
		})
		return bad
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFieldOps(t *testing.T) {
	_, err := Run(Config{NProcs: 2, Profile: Challenge()}, func(n *Node) error {
		d, err := NewDistribution(8, 2, Block, 0)
		if err != nil {
			return err
		}
		g, err := NewCollection[point](n, d)
		if err != nil {
			return err
		}
		g.Apply(func(gl int, p *point) { p.ID = int64(gl * 10); p.Pos = []float64{1} })

		s, err := Open(n, d, "fields")
		if err != nil {
			return err
		}
		if err := InsertField(s, g, func(p *point) int64 { return p.ID }); err != nil {
			return err
		}
		if err := InsertFloat64Slice(s, g, func(p *point) []float64 { return p.Pos }); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		back, err := NewCollection[point](n, d)
		if err != nil {
			return err
		}
		in, err := OpenInput(n, d, "fields")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.UnsortedRead(); err != nil {
			return err
		}
		if err := ExtractField(in, back, func(p *point) *int64 { return &p.ID }); err != nil {
			return err
		}
		if err := ExtractFloat64Slice(in, back, func(p *point) *[]float64 { return &p.Pos }); err != nil {
			return err
		}
		var bad error
		back.Apply(func(gl int, p *point) {
			if p.ID != int64(gl*10) || len(p.Pos) != 1 {
				bad = fmt.Errorf("global %d: %+v", gl, *p)
			}
		})
		return bad
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeErrorsExported(t *testing.T) {
	_, err := Run(Config{NProcs: 1, Profile: Challenge()}, func(n *Node) error {
		d, err := NewDistribution(4, 1, Block, 0)
		if err != nil {
			return err
		}
		s, err := Open(n, d, "err")
		if err != nil {
			return err
		}
		defer s.Close()
		if werr := s.Write(); !errors.Is(werr, ErrOrder) {
			return fmt.Errorf("Write with no inserts: %v", werr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeReplicated(t *testing.T) {
	_, err := Run(Config{NProcs: 2, Profile: Challenge()}, func(n *Node) error {
		f, err := OpenReplicated(n, "rep", true)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.Write([]byte("hdr")); err != nil {
			return err
		}
		f.SeekTo(0)
		got, err := f.Read(3)
		if err != nil {
			return err
		}
		if string(got) != "hdr" {
			return fmt.Errorf("read %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("paragon"); !ok {
		t.Fatal("paragon profile missing")
	}
	if _, ok := ProfileByName("vax"); ok {
		t.Fatal("unknown profile found")
	}
}

// TestFacadeGridAndTraceAndTree: the extension surface is reachable through
// the façade: 3-D grids, tree collectives, and tracing.
func TestFacadeGridAndTraceAndTree(t *testing.T) {
	rec := NewTraceRecorder()
	cfg := Config{NProcs: 8, Profile: Challenge(), Trace: rec, Collectives: TreeCollectives}
	_, err := Run(cfg, func(n *Node) error {
		g3, err := NewGrid3D(4, 4, 4, 2, 2, 2, Block, Block, Block, 0, 0, 0)
		if err != nil {
			return err
		}
		c, err := NewCollection[point](n, g3.Dist())
		if err != nil {
			return err
		}
		c.Apply(func(gl int, p *point) { p.ID = int64(gl) })
		s, err := Open(n, g3.Dist(), "g3")
		if err != nil {
			return err
		}
		if err := InsertField(s, c, func(p *point) int64 { return p.ID }); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
		// Read back on a flat BLOCK layout.
		d, err := NewDistribution(64, 8, Block, 0)
		if err != nil {
			return err
		}
		back, err := NewCollection[point](n, d)
		if err != nil {
			return err
		}
		in, err := OpenInput(n, d, "g3")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil {
			return err
		}
		if err := ExtractField(in, back, func(p *point) *int64 { return &p.ID }); err != nil {
			return err
		}
		var bad error
		back.Apply(func(gl int, p *point) {
			if p.ID != int64(gl) {
				bad = fmt.Errorf("global %d = %d", gl, p.ID)
			}
		})
		return bad
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
}

// TestFacadeBalancedAndExplicit exercises the explicit-distribution
// constructors through the façade.
func TestFacadeBalancedAndExplicit(t *testing.T) {
	_, err := Run(Config{NProcs: 2, Profile: Challenge()}, func(n *Node) error {
		ed, err := NewExplicitDistribution([]int{1, 0, 1, 0}, 2)
		if err != nil {
			return err
		}
		if ed.Mode != ExplicitMode {
			return fmt.Errorf("mode = %v", ed.Mode)
		}
		bd, err := NewBalancedDistribution([]float64{5, 1, 1, 1, 1, 1}, 2)
		if err != nil {
			return err
		}
		if bd.LocalCount(0) >= bd.LocalCount(1) {
			return fmt.Errorf("balance did not shift elements: %d vs %d",
				bd.LocalCount(0), bd.LocalCount(1))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
