// Analysis is the consumer half of the SCF workflow (§4.3: particle data is
// "periodically saved for later analysis"): a simulation run emits one
// d/stream frame per save interval, then a separate analysis program — on a
// different (smaller) machine — reads the frames back and computes an
// energy time series. Frame reading uses unsortedRead: energies are sums
// over all particles, so element order is irrelevant and the analysis skips
// the redistribution entirely (§3's intended use).
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"

	pcxx "pcxxstreams"
	"pcxxstreams/internal/scf"
)

const (
	simProcs  = 8
	anaProcs  = 2
	segments  = 96
	particles = 30
	steps     = 40
	saveEvery = 8
	dt        = 0.02
)

func frameName(step int) string { return fmt.Sprintf("frame.%04d", step) }

func main() {
	fs := pcxx.NewMemFS(pcxx.Challenge())

	// Producer: the simulation saves a frame every saveEvery steps.
	var saved []int
	cfg := pcxx.Config{NProcs: simProcs, Profile: pcxx.Challenge(), FS: fs}
	if _, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(segments, simProcs, pcxx.Cyclic, 0)
		if err != nil {
			return err
		}
		g, err := pcxx.NewCollection[scf.Segment](n, d)
		if err != nil {
			return err
		}
		g.Apply(func(gi int, s *scf.Segment) { s.Fill(gi, particles) })
		for step := 1; step <= steps; step++ {
			g.Apply(func(_ int, s *scf.Segment) { s.Step(dt) })
			if step%saveEvery != 0 {
				continue
			}
			s, err := pcxx.Open(n, d, frameName(step))
			if err != nil {
				return err
			}
			if err := pcxx.Insert[scf.Segment](s, g); err != nil {
				return err
			}
			if err := s.Write(); err != nil {
				return err
			}
			if err := s.Close(); err != nil {
				return err
			}
			if n.Rank() == 0 {
				saved = append(saved, step)
			}
		}
		return nil
	}); err != nil {
		log.Fatal("simulation:", err)
	}
	fmt.Printf("simulation (%d nodes) saved %d frames\n", simProcs, len(saved))

	// Consumer: a 2-node analysis machine reads every frame with
	// unsortedRead and reduces kinetic/potential energy.
	type sample struct {
		step   int
		ke, pe float64
	}
	series := make([]sample, 0, len(saved))
	cfg2 := pcxx.Config{NProcs: anaProcs, Profile: pcxx.Challenge(), FS: fs}
	res, err := pcxx.Run(cfg2, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(segments, anaProcs, pcxx.Block, 0)
		if err != nil {
			return err
		}
		for _, step := range saved {
			g, err := pcxx.NewCollection[scf.Segment](n, d)
			if err != nil {
				return err
			}
			in, err := pcxx.OpenInput(n, d, frameName(step))
			if err != nil {
				return err
			}
			if err := in.UnsortedRead(); err != nil { // order-free reduction
				return err
			}
			if err := pcxx.Extract[scf.Segment](in, g); err != nil {
				return err
			}
			if err := in.Close(); err != nil {
				return err
			}
			localKE, localPE := 0.0, 0.0
			g.Apply(func(_ int, s *scf.Segment) {
				localKE += s.KineticEnergy()
				localPE += s.PotentialEnergy()
			})
			ke, err := n.Comm().Allreduce(localKE, 0 /* sum */)
			if err != nil {
				return err
			}
			pe, err := n.Comm().Allreduce(localPE, 0)
			if err != nil {
				return err
			}
			if n.Rank() == 0 {
				series = append(series, sample{step: step, ke: ke, pe: pe})
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal("analysis:", err)
	}

	fmt.Printf("energy time series (analysis on %d nodes, %.4f virtual s):\n", anaProcs, res.Elapsed)
	fmt.Printf("%8s %14s %14s %14s\n", "step", "kinetic", "potential", "total")
	for _, s := range series {
		fmt.Printf("%8d %14.6f %14.6f %14.6f\n", s.step, s.ke, s.pe, s.ke+s.pe)
	}
	if len(series) != len(saved) {
		log.Fatalf("analyzed %d of %d frames", len(series), len(saved))
	}
	// The dynamics genuinely evolve: consecutive samples differ.
	for i := 1; i < len(series); i++ {
		if series[i].ke == series[i-1].ke {
			log.Fatalf("kinetic energy frozen between steps %d and %d", series[i-1].step, series[i].step)
		}
	}
	fmt.Println("all frames analyzed; dynamics evolving")
}
