// Faulttolerant demonstrates the checkpoint manager surviving the exact
// failure the paper's §2 motivates insurance against: "program termination
// by software bugs and job-control facilities" — here, an I/O fault that
// kills the application in the middle of writing a checkpoint.
//
// A long SCF-style run checkpoints every few steps over two rotating slots.
// One save is torn by an injected disk fault (the whole run aborts, as a
// job-control kill would). The restart discovers that the torn slot does
// not validate, falls back to the previous epoch, and recomputes from
// there — ending with exactly the same state fingerprint as an undisturbed
// run.
//
//	go run ./examples/faulttolerant
package main

import (
	"fmt"
	"log"

	pcxx "pcxxstreams"
	"pcxxstreams/internal/scf"
)

const (
	nprocs    = 4
	segments  = 32
	particles = 16
	ckEvery   = 5
	steps     = 20
	slots     = 2
	base      = "scf.ck"
)

// fingerprint reduces the collection state to one number on node 0.
func fingerprint(n *pcxx.Node, g *pcxx.Collection[scf.Segment]) (float64, error) {
	local := 0.0
	g.Apply(func(_ int, s *scf.Segment) { local += s.Checksum() })
	return n.Comm().Allreduce(local, 0 /* sum */)
}

// advance runs the dynamics from step from+1 through to, checkpointing
// every ckEvery steps with the manager.
func advance(n *pcxx.Node, g *pcxx.Collection[scf.Segment], m *pcxx.CheckpointManager, from, to int) error {
	for step := from + 1; step <= to; step++ {
		g.Apply(func(_ int, s *scf.Segment) { s.Step(0.01) })
		if step%ckEvery == 0 {
			if err := pcxx.SaveCheckpoint[scf.Segment](m, uint64(step), g); err != nil {
				return err
			}
		}
	}
	return nil
}

// referenceRun computes the undisturbed end-state fingerprint.
func referenceRun() (float64, error) {
	var fp float64
	cfg := pcxx.Config{NProcs: nprocs, Profile: pcxx.Challenge()}
	_, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(segments, nprocs, pcxx.Cyclic, 0)
		if err != nil {
			return err
		}
		g, err := pcxx.NewCollection[scf.Segment](n, d)
		if err != nil {
			return err
		}
		g.Apply(func(gi int, s *scf.Segment) { s.Fill(gi, particles) })
		for step := 1; step <= steps; step++ {
			g.Apply(func(_ int, s *scf.Segment) { s.Step(0.01) })
		}
		f, err := fingerprint(n, g)
		if n.Rank() == 0 {
			fp = f
		}
		return err
	})
	return fp, err
}

func main() {
	want, err := referenceRun()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference (no faults): end fingerprint %.9f\n", want)

	fs := pcxx.NewMemFS(pcxx.Challenge())

	// Run 1: checkpoints at steps 5 and 10 succeed; then the slot that
	// epoch 15 will use (15 %% 2 = 1, file scf.ck.1) is poisoned, so the
	// save at step 15 tears and the "job" dies.
	cfg := pcxx.Config{NProcs: nprocs, Profile: pcxx.Challenge(), FS: fs}
	_, err = pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(segments, nprocs, pcxx.Cyclic, 0)
		if err != nil {
			return err
		}
		g, err := pcxx.NewCollection[scf.Segment](n, d)
		if err != nil {
			return err
		}
		g.Apply(func(gi int, s *scf.Segment) { s.Fill(gi, particles) })
		m, err := pcxx.NewCheckpointManager(n, base, slots)
		if err != nil {
			return err
		}
		if err := advance(n, g, m, 0, 12); err != nil {
			return err
		}
		// The disk develops a fault under slot 1 just before step 15's save.
		if n.Rank() == 0 {
			if err := fs.InjectFault(base+".1", 0); err != nil {
				return err
			}
		}
		if err := n.Comm().Barrier(); err != nil {
			return err
		}
		return advance(n, g, m, 12, steps)
	})
	if err == nil {
		log.Fatal("expected the run to die on the torn checkpoint")
	}
	fmt.Printf("run 1 died mid-checkpoint as intended: %.120s...\n", err.Error())

	// Run 2: restart from whatever validates. Slot 1 (epoch 15) is torn;
	// slot 0 (epoch 10) must be chosen, and recomputation reaches the same
	// end state. Restart uses a different distribution for good measure.
	fs.ResetAbort()
	var got float64
	var resumedFrom uint64
	cfg2 := pcxx.Config{NProcs: nprocs, Profile: pcxx.Challenge(), FS: fs}
	_, err = pcxx.Run(cfg2, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(segments, nprocs, pcxx.Block, 0)
		if err != nil {
			return err
		}
		g, err := pcxx.NewCollection[scf.Segment](n, d)
		if err != nil {
			return err
		}
		epoch, err := pcxx.RestoreCheckpoint[scf.Segment](n, base, slots, g)
		if err != nil {
			return err
		}
		if n.Rank() == 0 {
			resumedFrom = epoch
		}
		// Recompute the lost steps. (Skip further checkpoints: the faulted
		// slot stays poisoned in this demonstration.)
		for step := int(epoch) + 1; step <= steps; step++ {
			g.Apply(func(_ int, s *scf.Segment) { s.Step(0.01) })
		}
		f, err := fingerprint(n, g)
		if n.Rank() == 0 {
			got = f
		}
		return err
	})
	if err != nil {
		log.Fatal("restart:", err)
	}
	fmt.Printf("run 2 resumed from epoch %d (torn epoch 15 correctly rejected)\n", resumedFrom)
	if resumedFrom != 10 {
		log.Fatalf("resumed from %d, want 10", resumedFrom)
	}
	if got != want {
		log.Fatalf("end fingerprint %.9f != reference %.9f", got, want)
	}
	fmt.Printf("end fingerprint %.9f matches the undisturbed run exactly\n", got)
}
