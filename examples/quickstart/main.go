// Quickstart: the smallest complete pC++/streams program — write a
// distributed collection of variable-sized objects to a d/stream on a
// 4-node simulated Paragon, read it back, and verify it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pcxx "pcxxstreams"
)

// Reading is an element type with a variable-sized field. Implementing
// StreamInsert/StreamExtract (by hand here; cmd/streamgen generates them)
// makes it insertable and extractable.
type Reading struct {
	Station int64
	Samples []float64
}

// StreamInsert implements pcxx.Inserter.
func (r *Reading) StreamInsert(e *pcxx.Encoder) {
	e.Int64(r.Station)
	e.Float64Slice(r.Samples)
}

// StreamExtract implements pcxx.Extractor.
func (r *Reading) StreamExtract(d *pcxx.Decoder) {
	r.Station = d.Int64()
	r.Samples = d.Float64Slice()
}

func main() {
	const nprocs, stations = 4, 40

	cfg := pcxx.Config{NProcs: nprocs, Profile: pcxx.Paragon()}
	res, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		// A CYCLIC distribution of 40 stations over 4 nodes, as in the
		// paper's Figure 3 declarations.
		d, err := pcxx.NewDistribution(stations, nprocs, pcxx.Cyclic, 0)
		if err != nil {
			return err
		}

		// Build and fill the collection: station g holds g%7+1 samples —
		// element sizes vary across the array, the case d/streams exist for.
		g, err := pcxx.NewCollection[Reading](n, d)
		if err != nil {
			return err
		}
		g.Apply(func(global int, r *Reading) {
			r.Station = int64(global)
			for i := 0; i <= global%7; i++ {
				r.Samples = append(r.Samples, float64(global)+float64(i)/10)
			}
		})

		// Output: oStream s(&d, &a, "stations"); s << g; s.write().
		s, err := pcxx.Open(n, d, "stations")
		if err != nil {
			return err
		}
		if err := pcxx.Insert[Reading](s, g); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		// Input: iStream s(&d, &a, "stations"); s.read(); s >> g2.
		g2, err := pcxx.NewCollection[Reading](n, d)
		if err != nil {
			return err
		}
		in, err := pcxx.OpenInput(n, d, "stations")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil {
			return err
		}
		if err := pcxx.Extract[Reading](in, g2); err != nil {
			return err
		}

		// Verify every element locally.
		var bad error
		g2.Apply(func(global int, r *Reading) {
			if r.Station != int64(global) || len(r.Samples) != global%7+1 {
				bad = fmt.Errorf("station %d corrupted: %+v", global, *r)
			}
		})
		if bad != nil {
			return bad
		}
		if n.Rank() == 0 {
			fmt.Printf("node 0: wrote and re-read %d variable-sized elements OK\n", stations)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip completed in %.4f virtual seconds on a %d-node simulated Paragon\n",
		res.Elapsed, nprocs)
}
