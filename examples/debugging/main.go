// Debugging demonstrates the third §2 task: "During the parallelization
// process application developers often need to compare results of parallel
// and sequential runs on the same problem, to confirm that parallelization
// has not introduced bugs. This frequently involves output of large
// distributed data structures from the parallel program."
//
// The sequential "reference" program (a 1-node machine) and the parallel
// program (8 nodes, a different distribution) each run the same SCF-style
// computation and dump their full state through a d/stream. Because the
// d/stream file format is independent of the writer's processor count and
// distribution, a 1-node comparator can then read BOTH files with sorted
// reads and diff them element by element. A deliberately buggy parallel
// variant shows the comparator catching a real parallelization bug.
//
//	go run ./examples/debugging
package main

import (
	"fmt"
	"log"

	pcxx "pcxxstreams"
	"pcxxstreams/internal/scf"
)

const (
	segments  = 48
	particles = 20
	steps     = 8
)

// simulate runs the dynamics and dumps the final state to file.
// skipLastElement injects the classic off-by-one parallelization bug: the
// last locally owned element never gets stepped.
func simulate(fs *pcxx.FileSystem, nprocs int, mode pcxx.Mode, file string, buggy bool) error {
	cfg := pcxx.Config{NProcs: nprocs, Profile: pcxx.Challenge(), FS: fs}
	_, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(segments, nprocs, mode, 0)
		if err != nil {
			return err
		}
		g, err := pcxx.NewCollection[scf.Segment](n, d)
		if err != nil {
			return err
		}
		g.Apply(func(gi int, s *scf.Segment) { s.Fill(gi, particles) })
		for step := 0; step < steps; step++ {
			local := g.Local()
			limit := len(local)
			if buggy && limit > 0 {
				limit-- // the bug: last local element skipped
			}
			for l := 0; l < limit; l++ {
				local[l].Step(0.02)
			}
		}
		s, err := pcxx.Open(n, d, file)
		if err != nil {
			return err
		}
		if err := pcxx.Insert[scf.Segment](s, g); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		return s.Close()
	})
	return err
}

// compare reads both dumps on a single node (sorted reads restore global
// element order regardless of how many nodes wrote each file) and returns
// the global indices that differ.
func compare(fs *pcxx.FileSystem, fileA, fileB string) ([]int, error) {
	var diffs []int
	cfg := pcxx.Config{NProcs: 1, Profile: pcxx.Challenge(), FS: fs}
	_, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(segments, 1, pcxx.Block, 0)
		if err != nil {
			return err
		}
		load := func(file string) (*pcxx.Collection[scf.Segment], error) {
			c, err := pcxx.NewCollection[scf.Segment](n, d)
			if err != nil {
				return nil, err
			}
			in, err := pcxx.OpenInput(n, d, file)
			if err != nil {
				return nil, err
			}
			defer in.Close()
			if err := in.Read(); err != nil {
				return nil, err
			}
			if err := pcxx.Extract[scf.Segment](in, c); err != nil {
				return nil, err
			}
			return c, in.Close()
		}
		a, err := load(fileA)
		if err != nil {
			return err
		}
		b, err := load(fileB)
		if err != nil {
			return err
		}
		for l := 0; l < a.LocalLen(); l++ {
			if !a.At(l).Equal(b.At(l)) {
				diffs = append(diffs, a.GlobalIndexOf(l))
			}
		}
		return nil
	})
	return diffs, err
}

func main() {
	fs := pcxx.NewMemFS(pcxx.Challenge())

	// Reference: sequential (1 node).
	if err := simulate(fs, 1, pcxx.Block, "seq.out", false); err != nil {
		log.Fatal("sequential run:", err)
	}
	// Correct parallelization: 8 nodes, CYCLIC.
	if err := simulate(fs, 8, pcxx.Cyclic, "par.out", false); err != nil {
		log.Fatal("parallel run:", err)
	}
	// Buggy parallelization.
	if err := simulate(fs, 8, pcxx.Cyclic, "bug.out", true); err != nil {
		log.Fatal("buggy run:", err)
	}

	diffs, err := compare(fs, "seq.out", "par.out")
	if err != nil {
		log.Fatal("compare:", err)
	}
	if len(diffs) != 0 {
		log.Fatalf("correct parallel run differs from sequential at %v", diffs)
	}
	fmt.Printf("sequential vs parallel: all %d segments identical — parallelization verified\n", segments)

	diffs, err = compare(fs, "seq.out", "bug.out")
	if err != nil {
		log.Fatal("compare:", err)
	}
	if len(diffs) == 0 {
		log.Fatal("comparator failed to catch the injected bug")
	}
	fmt.Printf("sequential vs buggy parallel: %d segments differ (e.g. global %v...) — bug caught\n",
		len(diffs), diffs[:min(4, len(diffs))])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
