// Particles reproduces Figure 3 of the paper: a distributed grid of
// ParticleList objects is written by one "program" (output phase) and read
// back by another (input phase), including the paper's two insert forms —
// the whole collection (s << g) and a single field (s << g.numberOfParticles)
// interleaved with a second aligned collection's field (g2.particleDensity),
// the interleaving feature used for visualization-tool output.
//
//	go run ./examples/particles
package main

import (
	"fmt"
	"log"

	pcxx "pcxxstreams"
)

// Position matches Figure 3's declarations.
type Position struct{ X, Y, Z float64 }

// StreamInsert implements pcxx.Inserter.
func (p *Position) StreamInsert(e *pcxx.Encoder) {
	e.Float64(p.X)
	e.Float64(p.Y)
	e.Float64(p.Z)
}

// StreamExtract implements pcxx.Extractor.
func (p *Position) StreamExtract(d *pcxx.Decoder) {
	p.X = d.Float64()
	p.Y = d.Float64()
	p.Z = d.Float64()
}

// ParticleList is Figure 3's element class: a count plus variable-sized
// mass and position arrays. Its insertion function decomposes the insertion
// in terms of simpler insertions of its fields, exactly like the paper's
// declareStreamInserter(ParticleList &p).
type ParticleList struct {
	NumberOfParticles int64
	Mass              []float64
	Position          []Position
}

// StreamInsert implements pcxx.Inserter (the paper's insertion function).
func (p *ParticleList) StreamInsert(e *pcxx.Encoder) {
	e.Int64(p.NumberOfParticles)
	e.Float64Slice(p.Mass) // s << array(p.mass, p.numberOfParticles)
	e.Uint32(uint32(len(p.Position)))
	for i := range p.Position {
		p.Position[i].StreamInsert(e)
	}
}

// StreamExtract implements pcxx.Extractor.
func (p *ParticleList) StreamExtract(d *pcxx.Decoder) {
	p.NumberOfParticles = d.Int64()
	p.Mass = d.Float64Slice()
	n := int(d.Uint32())
	p.Position = make([]Position, n)
	for i := range p.Position {
		p.Position[i].StreamExtract(d)
	}
}

// cell is the element of the aligned companion collection g2 of §4.1's
// interleaving example (particleDensity).
type cell struct{ ParticleDensity float64 }

const (
	nprocs = 4
	grid   = 12 // Figure 3 uses a 12-element grid
	file   = "wholeGridFile"
)

func main() {
	// One shared file system plays the role of the machine's disk across
	// the two programs.
	fs := pcxx.NewMemFS(pcxx.Paragon())

	if err := outputProgram(fs); err != nil {
		log.Fatal("output program:", err)
	}
	if err := inputProgram(fs); err != nil {
		log.Fatal("input program:", err)
	}
	fmt.Println("Figure 3 reproduced: grid written, interleaved fields written, everything read back intact")
}

// outputProgram is Figure 3's left-hand program.
func outputProgram(fs *pcxx.FileSystem) error {
	cfg := pcxx.Config{NProcs: nprocs, Profile: pcxx.Paragon(), FS: fs}
	_, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		// Processors P; Distribution d(12, &P, CYCLIC); Align a(...).
		d, err := pcxx.NewDistribution(grid, nprocs, pcxx.Cyclic, 0)
		if err != nil {
			return err
		}
		// DistributedParticleGrid<ParticleList> g(&d, &a).
		g, err := pcxx.NewCollection[ParticleList](n, d)
		if err != nil {
			return err
		}
		g.Apply(func(global int, p *ParticleList) {
			count := global%4 + 1
			p.NumberOfParticles = int64(count)
			for i := 0; i < count; i++ {
				p.Mass = append(p.Mass, float64(global)+0.5)
				p.Position = append(p.Position, Position{
					X: float64(global), Y: float64(i), Z: float64(global * i),
				})
			}
		})
		// A second collection aligned with g (the §4.1 example's g2).
		g2, err := pcxx.NewCollection[cell](n, d)
		if err != nil {
			return err
		}
		g2.Apply(func(global int, c *cell) { c.ParticleDensity = float64(global) / 10 })

		// oStream s(&d, &a, "wholeGridFile").
		s, err := pcxx.Open(n, d, file)
		if err != nil {
			return err
		}
		// s << g;  (record 1: the whole grid)
		if err := pcxx.Insert[ParticleList](s, g); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		// s << g.numberOfParticles; s << g2.particleDensity; s.write();
		// (record 2: two interleaved single-field inserts — related data
		// lands contiguously in the file for visualization tools)
		if err := pcxx.InsertField(s, g, func(p *ParticleList) int64 { return p.NumberOfParticles }); err != nil {
			return err
		}
		if err := pcxx.InsertField(s, g2, func(c *cell) float64 { return c.ParticleDensity }); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		return s.Close() // close runs in the destructor in pC++
	})
	return err
}

// inputProgram is Figure 3's right-hand program.
func inputProgram(fs *pcxx.FileSystem) error {
	cfg := pcxx.Config{NProcs: nprocs, Profile: pcxx.Paragon(), FS: fs}
	_, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(grid, nprocs, pcxx.Cyclic, 0)
		if err != nil {
			return err
		}
		g, err := pcxx.NewCollection[ParticleList](n, d)
		if err != nil {
			return err
		}
		g2, err := pcxx.NewCollection[cell](n, d)
		if err != nil {
			return err
		}

		// iStream s(&d, &a, "wholeGridFile"); s.read(); s >> g.
		s, err := pcxx.OpenInput(n, d, file)
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.Read(); err != nil {
			return err
		}
		if err := pcxx.Extract[ParticleList](s, g); err != nil {
			return err
		}
		// Second record: s >> g.numberOfParticles; s >> g2.particleDensity.
		if err := s.Read(); err != nil {
			return err
		}
		if err := pcxx.ExtractField(s, g, func(p *ParticleList) *int64 { return &p.NumberOfParticles }); err != nil {
			return err
		}
		if err := pcxx.ExtractField(s, g2, func(c *cell) *float64 { return &c.ParticleDensity }); err != nil {
			return err
		}

		// Verify.
		var bad error
		g.Apply(func(global int, p *ParticleList) {
			want := int64(global%4 + 1)
			if p.NumberOfParticles != want || len(p.Mass) != int(want) || len(p.Position) != int(want) {
				bad = fmt.Errorf("grid[%d] corrupted: %+v", global, *p)
				return
			}
			if p.Position[0].X != float64(global) {
				bad = fmt.Errorf("grid[%d] position corrupted", global)
			}
		})
		if bad != nil {
			return bad
		}
		g2.Apply(func(global int, c *cell) {
			if c.ParticleDensity != float64(global)/10 {
				bad = fmt.Errorf("g2[%d] density corrupted: %v", global, c.ParticleDensity)
			}
		})
		if bad == nil && n.Rank() == 0 {
			total := 0
			g.Apply(func(_ int, p *ParticleList) { total += int(p.NumberOfParticles) })
			fmt.Printf("node 0 re-read its share of the grid (%d particles locally)\n", total)
		}
		return bad
	})
	return err
}
