// Adaptive demonstrates the paper's opening motivation: "Adaptive parallel
// applications using dynamic distributed data structures of variable-sized
// elements (e.g. distributed grids of variable density) are now emerging."
//
// A 2-D grid of cells carries a particle population that concentrates into
// a hot spot, so per-cell data sizes vary by two orders of magnitude. The
// application periodically *re-balances* its distribution — switching from
// a (BLOCK, BLOCK) processor mesh to an explicit, load-balanced layout
// computed from the live densities — and the d/stream checkpoints written
// before and after rebalancing remain mutually readable, because every
// record carries its own distribution descriptor (including explicit owner
// tables).
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	pcxx "pcxxstreams"
)

const (
	rows, cols = 12, 12
	meshR      = 2
	meshC      = 2
	nprocs     = meshR * meshC
)

// cell is a variable-density grid cell: a list of particle masses.
type cell struct {
	Row, Col int32
	Masses   []float64
}

// StreamInsert implements pcxx.Inserter.
func (c *cell) StreamInsert(e *pcxx.Encoder) {
	e.Int32(c.Row)
	e.Int32(c.Col)
	e.Float64Slice(c.Masses)
}

// StreamExtract implements pcxx.Extractor.
func (c *cell) StreamExtract(d *pcxx.Decoder) {
	c.Row = d.Int32()
	c.Col = d.Int32()
	c.Masses = d.Float64Slice()
}

// density returns the particle count of cell (i, j): a sharp hot spot
// inside one quadrant of the grid plus a sparse background — the worst case
// for a static (BLOCK, BLOCK) mesh.
func density(i, j int) int {
	di, dj := i-rows/4, j-cols/4
	r2 := di*di + dj*dj
	switch {
	case r2 <= 2:
		return 200
	case r2 <= 8:
		return 40
	default:
		return 2
	}
}

func fill(g2 *pcxx.Grid2D, c *pcxx.Collection[cell]) {
	c.Apply(func(g int, e *cell) {
		i, j := g2.Coords(g)
		e.Row, e.Col = int32(i), int32(j)
		n := density(i, j)
		e.Masses = make([]float64, n)
		for k := range e.Masses {
			e.Masses[k] = float64(g) + float64(k)/1000
		}
	})
}

func localBytes(c *pcxx.Collection[cell]) int {
	total := 0
	c.Apply(func(_ int, e *cell) { total += 8 + 4 + 8*len(e.Masses) })
	return total
}

func main() {
	fs := pcxx.NewMemFS(pcxx.Challenge())

	// Phase 1: naive (BLOCK, BLOCK) mesh — the hot spot lands on one node.
	var naiveMax, naiveMin float64
	cfg := pcxx.Config{NProcs: nprocs, Profile: pcxx.Challenge(), FS: fs}
	if _, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		g2, err := pcxx.NewGrid2D(rows, cols, meshR, meshC, pcxx.Block, pcxx.Block, 0, 0)
		if err != nil {
			return err
		}
		c, err := pcxx.NewCollection[cell](n, g2.Dist())
		if err != nil {
			return err
		}
		fill(g2, c)
		mine := float64(localBytes(c))
		max, err := n.Comm().Allreduce(mine, 1 /* max */)
		if err != nil {
			return err
		}
		min, err := n.Comm().Allreduce(mine, 2 /* min */)
		if err != nil {
			return err
		}
		if n.Rank() == 0 {
			naiveMax, naiveMin = max, min
		}
		// Checkpoint under the naive layout.
		s, err := pcxx.Open(n, g2.Dist(), "grid.ck")
		if err != nil {
			return err
		}
		if err := pcxx.Insert[cell](s, c); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		return s.Close()
	}); err != nil {
		log.Fatal("phase 1:", err)
	}
	fmt.Printf("(BLOCK,BLOCK) mesh: per-node payload %0.f..%0.f bytes (imbalance %.1fx)\n",
		naiveMin, naiveMax, naiveMax/naiveMin)

	// Phase 2: restart from the checkpoint under a density-balanced
	// explicit layout, verify the data, and write a rebalanced checkpoint.
	weights := make([]float64, rows*cols)
	for g := range weights {
		weights[g] = float64(8 + 4 + 8*density(g/cols, g%cols))
	}
	var balMax, balMin float64
	if _, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		bd, err := pcxx.NewBalancedDistribution(weights, nprocs)
		if err != nil {
			return err
		}
		c, err := pcxx.NewCollection[cell](n, bd)
		if err != nil {
			return err
		}
		in, err := pcxx.OpenInput(n, bd, "grid.ck")
		if err != nil {
			return err
		}
		if err := in.Read(); err != nil { // redistributes grid → balanced
			return err
		}
		if err := pcxx.Extract[cell](in, c); err != nil {
			return err
		}
		if err := in.Close(); err != nil {
			return err
		}
		// Verify content against the generator.
		var bad error
		c.Apply(func(g int, e *cell) {
			i, j := g/cols, g%cols
			if int(e.Row) != i || int(e.Col) != j || len(e.Masses) != density(i, j) {
				bad = fmt.Errorf("cell (%d,%d) corrupted after rebalance", i, j)
			}
		})
		if bad != nil {
			return bad
		}
		mine := float64(localBytes(c))
		max, err := n.Comm().Allreduce(mine, 1)
		if err != nil {
			return err
		}
		min, err := n.Comm().Allreduce(mine, 2)
		if err != nil {
			return err
		}
		if n.Rank() == 0 {
			balMax, balMin = max, min
		}
		// Checkpoint under the balanced layout: the explicit owner table
		// rides inside the record.
		s, err := pcxx.Open(n, bd, "grid-balanced.ck")
		if err != nil {
			return err
		}
		if err := pcxx.Insert[cell](s, c); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		return s.Close()
	}); err != nil {
		log.Fatal("phase 2:", err)
	}
	fmt.Printf("density-balanced:   per-node payload %0.f..%0.f bytes (imbalance %.1fx)\n",
		balMin, balMax, balMax/balMin)
	if balMax/balMin >= naiveMax/naiveMin || balMax/balMin > 2.0 {
		log.Fatalf("rebalancing did not materially improve the byte balance (%.1fx → %.1fx)",
			naiveMax/naiveMin, balMax/balMin)
	}

	// Phase 3: a 1-node analysis tool reads the balanced checkpoint — the
	// explicit owner table in the file is all it needs.
	if _, err := pcxx.Run(pcxx.Config{NProcs: 1, Profile: pcxx.Challenge(), FS: fs},
		func(n *pcxx.Node) error {
			d, err := pcxx.NewDistribution(rows*cols, 1, pcxx.Block, 0)
			if err != nil {
				return err
			}
			c, err := pcxx.NewCollection[cell](n, d)
			if err != nil {
				return err
			}
			in, err := pcxx.OpenInput(n, d, "grid-balanced.ck")
			if err != nil {
				return err
			}
			defer in.Close()
			if err := in.Read(); err != nil {
				return err
			}
			if err := pcxx.Extract[cell](in, c); err != nil {
				return err
			}
			particles := 0
			c.Apply(func(_ int, e *cell) { particles += len(e.Masses) })
			fmt.Printf("analysis tool (1 node) read the balanced checkpoint: %d cells, %d particles\n",
				c.GlobalLen(), particles)
			return nil
		}); err != nil {
		log.Fatal("phase 3:", err)
	}
}
