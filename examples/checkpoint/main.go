// Checkpoint demonstrates the paper's flagship use case (§2): a
// long-running SCF-style N-body simulation periodically saves its complete
// distributed state, then a later run restarts from the checkpoint — on a
// DIFFERENT number of processors with a DIFFERENT distribution. The sorted
// read primitive "does the paperwork": no distribution or size information
// crosses the program boundary except through the file itself.
//
// The checkpoint is written to a real file on the host file system so it
// can be inspected afterwards with cmd/dsdump.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	pcxx "pcxxstreams"
	"pcxxstreams/internal/scf"
)

const (
	segments  = 64
	particles = 25
	steps     = 20
	ckEvery   = 10
	ckFile    = "scf.ck"
)

func main() {
	dir, err := os.MkdirTemp("", "pcxx-checkpoint-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Phase 1: simulate on 4 nodes with a CYCLIC distribution,
	// checkpointing every ckEvery steps; "crash" after the checkpoint.
	fs := pcxx.NewFileSystem(pcxx.Paragon(), pcxx.OSFactory(dir))
	var sumAtCk float64
	cfg := pcxx.Config{NProcs: 4, Profile: pcxx.Paragon(), FS: fs}
	if _, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(segments, 4, pcxx.Cyclic, 0)
		if err != nil {
			return err
		}
		g, err := pcxx.NewCollection[scf.Segment](n, d)
		if err != nil {
			return err
		}
		g.Apply(func(global int, s *scf.Segment) { s.Fill(global, particles) })

		for step := 1; step <= ckEvery; step++ {
			g.Apply(func(_ int, s *scf.Segment) { s.Step(0.01) })
		}
		// Checkpoint the full distributed state with three lines of I/O.
		s, err := pcxx.Open(n, d, ckFile)
		if err != nil {
			return err
		}
		if err := pcxx.Insert[scf.Segment](s, g); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		// Record the state fingerprint for the verification below.
		local := 0.0
		g.Apply(func(_ int, s *scf.Segment) { local += s.Checksum() })
		total, err := n.Comm().Allreduce(local, 0 /* sum */)
		if err != nil {
			return err
		}
		if n.Rank() == 0 {
			sumAtCk = total
			fmt.Printf("[run 1] 4 nodes, CYCLIC: checkpointed %d segments at step %d (fingerprint %.6f)\n",
				segments, ckEvery, total)
		}
		return nil
	}); err != nil {
		log.Fatal("run 1:", err)
	}

	// Phase 2: restart on 6 nodes with a BLOCK distribution. The library
	// reads the writer's layout from the file and redistributes.
	fs2 := pcxx.NewFileSystem(pcxx.Paragon(), pcxx.OSFactory(dir))
	var sumAtRestart, sumAtEnd float64
	cfg2 := pcxx.Config{NProcs: 6, Profile: pcxx.Paragon(), FS: fs2}
	if _, err := pcxx.Run(cfg2, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(segments, 6, pcxx.Block, 0)
		if err != nil {
			return err
		}
		g, err := pcxx.NewCollection[scf.Segment](n, d)
		if err != nil {
			return err
		}
		in, err := pcxx.OpenInput(n, d, ckFile)
		if err != nil {
			return err
		}
		if err := in.Read(); err != nil { // sorted: order restored, redistributed
			return err
		}
		if err := pcxx.Extract[scf.Segment](in, g); err != nil {
			return err
		}
		if err := in.Close(); err != nil {
			return err
		}

		local := 0.0
		g.Apply(func(_ int, s *scf.Segment) { local += s.Checksum() })
		total, err := n.Comm().Allreduce(local, 0)
		if err != nil {
			return err
		}
		if n.Rank() == 0 {
			sumAtRestart = total
		}

		// Continue the simulation to completion.
		for step := ckEvery + 1; step <= steps; step++ {
			g.Apply(func(_ int, s *scf.Segment) { s.Step(0.01) })
		}
		local = 0.0
		g.Apply(func(_ int, s *scf.Segment) { local += s.Checksum() })
		total, err = n.Comm().Allreduce(local, 0)
		if err != nil {
			return err
		}
		if n.Rank() == 0 {
			sumAtEnd = total
		}
		return nil
	}); err != nil {
		log.Fatal("run 2:", err)
	}

	if sumAtRestart != sumAtCk {
		log.Fatalf("restart state differs from checkpoint: %.9f != %.9f", sumAtRestart, sumAtCk)
	}
	fmt.Printf("[run 2] 6 nodes, BLOCK: restart fingerprint matches checkpoint exactly (%.6f)\n", sumAtRestart)
	fmt.Printf("[run 2] continued to step %d (fingerprint %.6f)\n", steps, sumAtEnd)

	path := filepath.Join(dir, ckFile)
	if fi, err := os.Stat(path); err == nil {
		fmt.Printf("checkpoint file on disk: %s (%d bytes) — inspect with: go run ./cmd/dsdump %s\n",
			path, fi.Size(), path)
	}
}
