// Tree demonstrates §4.1's closing remark — "recursively structured data
// types such as trees can be output naturally using recursive insertion
// functions" — and the pC++ claim that collections support "arbitrary
// distributed data structures (e.g. distributed trees of objects) over the
// distributed array base".
//
// Each collection element holds the root of a local adaptive refinement
// tree (as in an AMR or Barnes-Hut code). Tree shapes differ per element,
// so element payloads vary wildly — exactly the irregular case d/streams
// target. The insertion function recurses over the tree; the extraction
// function rebuilds it.
//
//	go run ./examples/tree
package main

import (
	"fmt"
	"log"

	pcxx "pcxxstreams"
)

// treeNode is one node of an adaptive refinement tree.
type treeNode struct {
	Value    float64
	Children []*treeNode
}

// insert is the recursive insertion function of §4.1.
func (t *treeNode) insert(e *pcxx.Encoder) {
	e.Float64(t.Value)
	e.Uint32(uint32(len(t.Children)))
	for _, c := range t.Children {
		c.insert(e)
	}
}

// extract is the matching recursive extraction function.
func extract(d *pcxx.Decoder) *treeNode {
	t := &treeNode{Value: d.Float64()}
	n := int(d.Uint32())
	for i := 0; i < n; i++ {
		t.Children = append(t.Children, extract(d))
	}
	return t
}

func (t *treeNode) count() int {
	n := 1
	for _, c := range t.Children {
		n += c.count()
	}
	return n
}

func (t *treeNode) sum() float64 {
	s := t.Value
	for _, c := range t.Children {
		s += c.sum()
	}
	return s
}

func equal(a, b *treeNode) bool {
	if a.Value != b.Value || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// build creates a deterministic tree whose depth and fan-out vary with the
// element's global index (refinement depth differs per region).
func build(global, depth int) *treeNode {
	t := &treeNode{Value: float64(global) + float64(depth)/10}
	if depth <= 0 {
		return t
	}
	fan := (global+depth)%3 + 1
	for i := 0; i < fan; i++ {
		t.Children = append(t.Children, build(global*7+i, depth-1))
	}
	return t
}

// region is the collection element: a variable-shape refinement tree.
type region struct {
	Root *treeNode
}

// StreamInsert recurses over the tree (pcxx.Inserter).
func (r *region) StreamInsert(e *pcxx.Encoder) { r.Root.insert(e) }

// StreamExtract rebuilds the tree (pcxx.Extractor).
func (r *region) StreamExtract(d *pcxx.Decoder) { r.Root = extract(d) }

func main() {
	const nprocs, regions = 4, 16
	cfg := pcxx.Config{NProcs: nprocs, Profile: pcxx.CM5()}
	res, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(regions, nprocs, pcxx.Cyclic, 0)
		if err != nil {
			return err
		}
		forest, err := pcxx.NewCollection[region](n, d)
		if err != nil {
			return err
		}
		forest.Apply(func(g int, r *region) { r.Root = build(g, g%4+1) })

		s, err := pcxx.Open(n, d, "forest")
		if err != nil {
			return err
		}
		if err := pcxx.Insert[region](s, forest); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		// Restore under a different distribution: whole trees migrate
		// between nodes through the sorted read.
		rd, err := pcxx.NewDistribution(regions, nprocs, pcxx.Block, 0)
		if err != nil {
			return err
		}
		restored, err := pcxx.NewCollection[region](n, rd)
		if err != nil {
			return err
		}
		in, err := pcxx.OpenInput(n, rd, "forest")
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.Read(); err != nil {
			return err
		}
		if err := pcxx.Extract[region](in, restored); err != nil {
			return err
		}

		var bad error
		localNodes := 0
		restored.Apply(func(g int, r *region) {
			want := build(g, g%4+1)
			if !equal(r.Root, want) {
				bad = fmt.Errorf("region %d tree corrupted", g)
				return
			}
			localNodes += r.Root.count()
		})
		if bad != nil {
			return bad
		}
		total, err := n.Comm().Allreduce(float64(localNodes), 0 /* sum */)
		if err != nil {
			return err
		}
		if n.Rank() == 0 {
			fmt.Printf("%d refinement trees (%d tree nodes total) survived the round trip, redistributed CYCLIC→BLOCK\n",
				regions, int(total))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %.4f virtual seconds on a simulated CM-5\n", res.Elapsed)
}
