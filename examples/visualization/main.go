// Visualization demonstrates the paper's §2 "communicating results to
// tools" task using the two features designed for it:
//
//   - interleaving (§3, §4.1): corresponding fields of several aligned
//     collections are written contiguously per element, "useful for writing
//     files for communication with many visualization tools which require
//     related data to be written contiguously";
//
//   - unsortedRead (§3): the consumer computes an order-independent
//     statistic (a density histogram), so it reads with unsortedRead and
//     skips the interprocessor communication entirely — and may even run on
//     a different node count than the producer.
//
//     go run ./examples/visualization
package main

import (
	"fmt"
	"log"
	"strings"

	pcxx "pcxxstreams"
)

// zone is one region of a simulated flow field.
type zone struct {
	Density  float64
	Velocity float64
}

const (
	zones    = 4096
	vizFile  = "frame0042.viz"
	bins     = 10
	producer = 8 // nodes writing
	consumer = 3 // nodes visualizing
)

func main() {
	fs := pcxx.NewMemFS(pcxx.Challenge())

	// Producer: a simulation on 8 nodes dumps one visualization frame.
	// Density and velocity live in two separate (aligned) collections, as
	// different physics modules own different fields; interleaving makes
	// them contiguous per zone in the file anyway.
	cfg := pcxx.Config{NProcs: producer, Profile: pcxx.Challenge(), FS: fs}
	if _, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(zones, producer, pcxx.BlockCyclic, 32)
		if err != nil {
			return err
		}
		dens, err := pcxx.NewCollection[zone](n, d)
		if err != nil {
			return err
		}
		dens.Apply(func(g int, z *zone) {
			z.Density = float64(g%100) / 100 // a striped field: flat histogram
			z.Velocity = float64(g) * 0.001
		})

		s, err := pcxx.Open(n, d, vizFile)
		if err != nil {
			return err
		}
		// Two inserts, one write: density and velocity interleave per zone.
		if err := pcxx.InsertField(s, dens, func(z *zone) float64 { return z.Density }); err != nil {
			return err
		}
		if err := pcxx.InsertField(s, dens, func(z *zone) float64 { return z.Velocity }); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		return s.Close()
	}); err != nil {
		log.Fatal("producer:", err)
	}

	// Consumer: a 3-node visualization tool reads the frame with
	// unsortedRead (zone order is irrelevant to a histogram).
	hist := make([]int, bins)
	var vmax float64
	cfg2 := pcxx.Config{NProcs: consumer, Profile: pcxx.Challenge(), FS: fs}
	res, err := pcxx.Run(cfg2, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(zones, consumer, pcxx.Block, 0)
		if err != nil {
			return err
		}
		frame, err := pcxx.NewCollection[zone](n, d)
		if err != nil {
			return err
		}
		in, err := pcxx.OpenInput(n, d, vizFile)
		if err != nil {
			return err
		}
		defer in.Close()
		if err := in.UnsortedRead(); err != nil { // no reshuffle needed
			return err
		}
		if err := pcxx.ExtractField(in, frame, func(z *zone) *float64 { return &z.Density }); err != nil {
			return err
		}
		if err := pcxx.ExtractField(in, frame, func(z *zone) *float64 { return &z.Velocity }); err != nil {
			return err
		}

		// Local histogram, then reduce bin by bin.
		local := make([]float64, bins)
		lmax := 0.0
		frame.Apply(func(_ int, z *zone) {
			b := int(z.Density * bins)
			if b >= bins {
				b = bins - 1
			}
			local[b]++
			if z.Velocity > lmax {
				lmax = z.Velocity
			}
		})
		for b := range local {
			tot, err := n.Comm().Allreduce(local[b], 0 /* sum */)
			if err != nil {
				return err
			}
			if n.Rank() == 0 {
				hist[b] = int(tot)
			}
		}
		m, err := n.Comm().Allreduce(lmax, 1 /* max */)
		if err != nil {
			return err
		}
		if n.Rank() == 0 {
			vmax = m
		}
		return nil
	})
	if err != nil {
		log.Fatal("consumer:", err)
	}

	total := 0
	fmt.Printf("density histogram over %d zones (written by %d nodes, visualized by %d):\n",
		zones, producer, consumer)
	for b, c := range hist {
		fmt.Printf("  [%.1f-%.1f) %-6d %s\n", float64(b)/bins, float64(b+1)/bins, c,
			strings.Repeat("#", c/16))
		total += c
	}
	fmt.Printf("max velocity %.3f; %d zones accounted for; frame read in %.4f virtual s\n",
		vmax, total, res.Elapsed)
	if total != zones {
		log.Fatalf("histogram covers %d zones, want %d", total, zones)
	}
}
