module pcxxstreams

go 1.24
