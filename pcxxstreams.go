// Package pcxxstreams is a Go reproduction of pC++/streams (Gotwals,
// Srinivas, Gannon — PPoPP 1995): d/streams, a buffered-I/O abstraction for
// distributed arrays of variable-sized objects, together with the whole
// stack the paper's library ran on — an object-parallel collection model, a
// simulated multicomputer with message passing over goroutines or TCP
// sockets, and a Paragon-style parallel file system with a calibrated cost
// model.
//
// This package is the public façade: it re-exports the user-facing API of
// the internal packages so applications can be written against one import.
//
// A minimal program (see examples/quickstart for the runnable version):
//
//	cfg := pcxxstreams.Config{NProcs: 4, Profile: pcxxstreams.Paragon()}
//	pcxxstreams.Run(cfg, func(n *pcxxstreams.Node) error {
//	    d, _ := pcxxstreams.NewDistribution(1000, 4, pcxxstreams.Cyclic, 0)
//	    g, _ := pcxxstreams.NewCollection[Particle](n, d)
//	    // ... fill g ...
//	    s, _ := pcxxstreams.Open(n, d, "wholeGridFile")   // oStream s(&d,&a,...)
//	    pcxxstreams.Insert[Particle](s, g)                // s << g
//	    s.Write()                                         // s.write()
//	    return s.Close()
//	})
package pcxxstreams

import (
	"pcxxstreams/internal/ckpt"
	"pcxxstreams/internal/collection"
	"pcxxstreams/internal/collective"
	"pcxxstreams/internal/distr"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/dsmon/critpath"
	"pcxxstreams/internal/dstream"
	"pcxxstreams/internal/grid"
	"pcxxstreams/internal/machine"
	"pcxxstreams/internal/pfs"
	"pcxxstreams/internal/replicated"
	"pcxxstreams/internal/server"
	"pcxxstreams/internal/session"
	"pcxxstreams/internal/telemetry"
	"pcxxstreams/internal/trace"
	"pcxxstreams/internal/vtime"
)

// --- Machine: the simulated multicomputer (paper's Processors object) ---

type (
	// Config describes a machine run: node count, platform cost profile,
	// transport, and optionally a shared file system.
	Config = machine.Config
	// Node is one rank's execution context inside Run.
	Node = machine.Node
	// Result reports per-node and maximum virtual times of a run.
	Result = machine.Result
	// TransportKind selects in-process channels or TCP sockets.
	TransportKind = machine.TransportKind
	// Profile is a platform cost model (Paragon, Challenge, CM5).
	Profile = vtime.Profile
)

// Transport kinds.
const (
	// TransportChan exchanges messages through in-process queues.
	TransportChan = machine.TransportChan
	// TransportTCP exchanges messages over loopback TCP sockets.
	TransportTCP = machine.TransportTCP
)

// Collective algorithms (Config.Collectives).
const (
	// LinearCollectives is the root-exchanges-with-all default, right at
	// the paper's 4-16 node scale.
	LinearCollectives = collective.Linear
	// TreeCollectives uses binomial trees and a dissemination barrier:
	// O(log P) depth for large simulated machines.
	TreeCollectives = collective.Tree
)

// TraceRecorder records per-operation virtual-time intervals of a run
// (Config.Trace); render with WriteGantt or WriteChromeJSON.
type TraceRecorder = trace.Recorder

// NewTraceRecorder creates an empty trace recorder.
var NewTraceRecorder = trace.New

// Monitor is the run-wide observability handle (Config.Monitor): a metric
// registry covering comm, collective, pfs and dstream, plus — when created
// with NewTracingMonitor — a trace recorder that adds comm/collective/
// dstream spans to the io timeline. Expose with WritePrometheus, WriteJSON
// or WriteChromeJSON.
type Monitor = dsmon.Monitor

var (
	// NewMonitor creates a metrics-only monitor.
	NewMonitor = dsmon.New
	// NewTracingMonitor creates a monitor that also records spans.
	NewTracingMonitor = dsmon.NewTracing
)

type (
	// MetricsSnapshot is a consistent point-in-time copy of a monitor's
	// metric registry (see Registry.Snapshot and Watcher).
	MetricsSnapshot = dsmon.Snapshot
	// MetricsWatcher delivers periodic registry snapshots on a channel
	// mid-run (see Registry.Watch); snapshots are deep copies owned by the
	// receiver.
	MetricsWatcher = dsmon.Watcher
	// CritPathReport attributes a traced run's virtual time per rank and
	// category and extracts the critical path (see AnalyzeCritPath).
	CritPathReport = critpath.Report
	// TelemetryServer serves a monitor's live metrics/trace/critpath over
	// HTTP (see ServeTelemetry; Config.TelemetryAddr serves for a run's
	// duration automatically).
	TelemetryServer = telemetry.Server
)

var (
	// AnalyzeCritPath builds the critical-path attribution report from a
	// tracing monitor's recorder.
	AnalyzeCritPath = critpath.Analyze
	// ServeTelemetry starts the live telemetry HTTP server (/metrics,
	// /trace, /critpath, /healthz, /debug/vars) for a monitor.
	ServeTelemetry = telemetry.Serve
)

// Run executes body SPMD-style on every node of the configured machine.
var Run = machine.Run

// Platform profiles.
var (
	// Paragon models the Intel Paragon with its PFS parallel file system.
	Paragon = vtime.Paragon
	// Challenge models the SGI Challenge shared-memory multiprocessor.
	Challenge = vtime.Challenge
	// CM5 models the Thinking Machines CM-5 with SFS.
	CM5 = vtime.CM5
	// ProfileByName looks profiles up by name ("paragon", "challenge", "cm5").
	ProfileByName = vtime.ByName
)

// --- Distribution and alignment (HPF-style, paper §4) ---

type (
	// Distribution maps collection elements to owning processors.
	Distribution = distr.Distribution
	// Mode is the HPF distribution pattern (Block, Cyclic, BlockCyclic).
	Mode = distr.Mode
	// Alignment maps collection indices onto a distribution template.
	Alignment = distr.Alignment
)

// Distribution modes.
const (
	// Block assigns contiguous chunks to processors.
	Block = distr.Block
	// Cyclic deals elements round-robin.
	Cyclic = distr.Cyclic
	// BlockCyclic deals fixed-size blocks round-robin.
	BlockCyclic = distr.BlockCyclic
	// ExplicitMode assigns elements through an owner table.
	ExplicitMode = distr.Explicit
)

// Distribution constructors.
var (
	// NewDistribution distributes n elements over nprocs processors.
	NewDistribution = distr.New
	// NewAlignedDistribution aligns n elements onto a template.
	NewAlignedDistribution = distr.NewAligned
	// NewExplicitDistribution distributes by an explicit owner table.
	NewExplicitDistribution = distr.NewExplicit
	// NewBalancedDistribution partitions weighted elements into contiguous
	// near-equal-weight chunks (variable-density data).
	NewBalancedDistribution = distr.NewBalanced
	// IdentityAlignment is the 1:1 alignment.
	IdentityAlignment = distr.Identity
)

// Grid2D distributes a 2-D grid over a processor mesh with an HPF pattern
// per dimension; its Dist() plugs into collections and streams.
type Grid2D = grid.Grid2D

// Grid3D is the three-dimensional counterpart of Grid2D.
type Grid3D = grid.Grid3D

// Grid constructors.
var (
	// NewGrid2D builds a rows × cols grid over a procRows × procCols mesh.
	NewGrid2D = grid.New2D
	// NewGrid3D builds an nx × ny × nz grid over a px × py × pz mesh.
	NewGrid3D = grid.New3D
)

// --- Collections (pC++'s distributed arrays of objects) ---

// Collection is a distributed array of T over a Distribution.
type Collection[T any] = collection.Collection[T]

// NewCollection builds a node's view of a collection distributed by d.
func NewCollection[T any](n *Node, d *Distribution) (*Collection[T], error) {
	return collection.New[T](n, d)
}

// --- d/streams: the paper's central contribution ---

type (
	// OStream is an output d/stream (declare with Open).
	OStream = dstream.OStream
	// IStream is an input d/stream (declare with OpenInput).
	IStream = dstream.IStream
	// Encoder is the per-element payload encoder used by inserters.
	Encoder = dstream.Encoder
	// Decoder is the per-element payload decoder used by extractors.
	Decoder = dstream.Decoder
	// Inserter is implemented by self-inserting element types.
	Inserter = dstream.Inserter
	// Extractor is implemented by self-extracting element types.
	Extractor = dstream.Extractor
	// StreamOptions is the stream settings struct behind the functional
	// options; prefer Open/OpenInput with With* options.
	StreamOptions = dstream.Options
	// StreamOption is one functional stream setting for Open/OpenInput.
	StreamOption = dstream.Option
	// Strategy selects the collective data path of a stream (funnel,
	// parallel, two-phase, or the auto heuristic).
	Strategy = dstream.Strategy
	// MetaPolicy selects the metadata path of §4.1 step 1.
	//
	// Deprecated: use Strategy (WithStrategy) instead.
	MetaPolicy = dstream.MetaPolicy
	// OChannel is the sending end of a stream-to-stream channel (declare
	// with OpenChannel): the d/stream record model over the interconnect,
	// skipping the file system.
	OChannel = dstream.OChannel
	// IChannel is the receiving end of a stream-to-stream channel (declare
	// with OpenChannelInput).
	IChannel = dstream.IChannel
)

// DefaultChannelWindow is the per-consumer credit window a channel uses
// when WithChannelWindow is not given.
const DefaultChannelWindow = dstream.DefaultChannelWindow

// Stream strategies.
const (
	// StrategyAuto picks funnel or parallel per record by collection size.
	StrategyAuto = dstream.StrategyAuto
	// StrategyFunnel routes metadata and data through node 0's block.
	StrategyFunnel = dstream.StrategyFunnel
	// StrategyParallel writes with every node hitting the PFS directly.
	StrategyParallel = dstream.StrategyParallel
	// StrategyTwoPhase shuffles to stripe-aligned aggregators first.
	StrategyTwoPhase = dstream.StrategyTwoPhase
)

// Metadata policies.
const (
	// MetaAuto applies the paper's small-collection heuristic.
	MetaAuto = dstream.MetaAuto
	// MetaFunnel always funnels metadata through node 0.
	MetaFunnel = dstream.MetaFunnel
	// MetaParallel always writes metadata with its own parallel write.
	MetaParallel = dstream.MetaParallel
)

// Open opens an output d/stream with functional options:
// Open(n, d, "file", WithStrategy(StrategyTwoPhase), WithAsync()). It
// routes through the default session (see Connect and SetDefaultSession):
// embedded programs get the machine's own file system, while a program
// whose default session is connected to a dstreamd daemon opens the same
// stream against remote storage.
func Open(n *Node, d *Distribution, name string, opts ...StreamOption) (*OStream, error) {
	return session.Default().Open(n, d, name, opts...)
}

// OpenInput opens an input d/stream with functional options, routing
// through the default session like Open.
func OpenInput(n *Node, d *Distribution, name string, opts ...StreamOption) (*IStream, error) {
	return session.Default().OpenInput(n, d, name, opts...)
}

// OpenChannel opens the sending end of a stream-to-stream channel named
// name: a persistent pipeline that attaches the M producer ranks owning
// mine (machine ranks 0..M-1) to the N consumer ranks owning peer (the top
// N machine ranks), redistributing records on the fly when the two
// distributions differ. Channels move bytes over the interconnect and never
// touch the file system; records are written with the same inserter
// machinery as an OStream and paced by credit-based flow control.
func OpenChannel(n *Node, mine, peer *Distribution, name string, opts ...StreamOption) (*OChannel, error) {
	return session.Default().OpenChannel(n, mine, peer, name, opts...)
}

// OpenChannelInput opens the receiving end of a stream-to-stream channel,
// the consumer-side counterpart of OpenChannel: mine is the consumer
// group's distribution, peer the producers'.
func OpenChannelInput(n *Node, mine, peer *Distribution, name string, opts ...StreamOption) (*IChannel, error) {
	return session.Default().OpenChannelInput(n, mine, peer, name, opts...)
}

// InsertElems inserts one array of elements into a channel from a plain
// local slice (channels take slices rather than Collections because a
// channel group spans only part of the machine).
func InsertElems[T any, PT dstream.InserterPtr[T]](s *OChannel, local []T) error {
	return dstream.InsertElems[T, PT](s, local)
}

// ExtractElems extracts one array of elements from a channel into a plain
// local slice, the inverse of InsertElems.
func ExtractElems[T any, PT dstream.ExtractorPtr[T]](r *IChannel, local []T) error {
	return dstream.ExtractElems[T, PT](r, local)
}

// Stream constructors and sentinel errors.
var (
	// ParseStrategy maps a flag value to a Strategy.
	ParseStrategy = dstream.ParseStrategy

	// WithStrategy selects the collective data path.
	WithStrategy = dstream.WithStrategy
	// WithAsync makes output writes write-behind.
	WithAsync = dstream.WithAsync
	// WithAppend adds records to an existing d/stream file.
	WithAppend = dstream.WithAppend
	// WithStrict enforces full extraction on input streams.
	WithStrict = dstream.WithStrict
	// WithFunnelThreshold overrides the Auto funnel cutoff.
	WithFunnelThreshold = dstream.WithFunnelThreshold
	// WithAggregators overrides the two-phase aggregator count.
	WithAggregators = dstream.WithAggregators
	// WithReadAhead enables the input stream's prefetch pipeline: up to n
	// records' refills are issued in the background and Read stalls only
	// for the un-overlapped remainder of each transfer.
	WithReadAhead = dstream.WithReadAhead
	// WithChannelWindow sets a channel's per-consumer credit window in
	// bytes (how far a producer may run ahead of each consumer).
	WithChannelWindow = dstream.WithChannelWindow
	// WithStreamOptions merges a pre-built StreamOptions value.
	WithStreamOptions = dstream.WithOptions
	// WithFileSystem opens the stream's file on an explicit file system
	// (sessions use this internally to point streams at a daemon).
	WithFileSystem = dstream.WithFileSystem

	// ErrClosed reports use of a closed stream.
	ErrClosed = dstream.ErrClosed
	// ErrNotAligned reports a collection/stream layout mismatch.
	ErrNotAligned = dstream.ErrNotAligned
	// ErrOrder reports a primitive called out of Figure 2's legal order.
	ErrOrder = dstream.ErrOrder
	// ErrIO wraps a flush or refill that failed in the layers below.
	ErrIO = dstream.ErrIO
	// ErrEOS reports end of stream on a channel's receiving end: every
	// producer closed and all records have been read. Not sticky.
	ErrEOS = dstream.ErrEOS
)

// --- Parallel file system (the simulated Paragon PFS) ---

type (
	// FileSystem is the simulated parallel file system (Config.FS).
	FileSystem = pfs.FileSystem
	// BackendFactory creates the storage backend behind each file.
	BackendFactory = pfs.BackendFactory
	// FileLayout is the stripe geometry of the storage behind one file;
	// the two-phase strategy derives its aggregator plan from it.
	FileLayout = pfs.Layout
	// IOStats is a run's per-operation I/O account (Result.IO).
	IOStats = pfs.IOStats
)

// DefaultStripeUnit is the stripe cell size assumed for backends that do
// not expose their geometry.
const DefaultStripeUnit = pfs.DefaultStripeUnit

// File-system constructors.
var (
	// NewMemFS creates an in-memory file system with the profile's cost model.
	NewMemFS = pfs.NewMemFS
	// NewFileSystem creates a file system over a custom backend factory.
	NewFileSystem = pfs.NewFileSystem
	// MemFactory backs each file with one in-memory image.
	MemFactory = pfs.MemFactory
	// OSFactory backs each file with a real file under the given directory.
	OSFactory = pfs.OSFactory
	// StripedMemFactory stripes each file over k in-memory devices — the
	// geometry the two-phase strategy aggregates against.
	StripedMemFactory = pfs.StripedMemFactory
)

// Insert inserts an entire collection: s << g.
func Insert[T any, PT dstream.InserterPtr[T]](s *OStream, c *Collection[T]) error {
	return dstream.Insert[T, PT](s, c)
}

// Extract extracts an entire collection: s >> g.
func Extract[T any, PT dstream.ExtractorPtr[T]](s *IStream, c *Collection[T]) error {
	return dstream.Extract[T, PT](s, c)
}

// InsertField inserts one scalar field of every element: s << g.field.
func InsertField[T any, V dstream.Scalar](s *OStream, c *Collection[T], get func(*T) V) error {
	return dstream.InsertField(s, c, get)
}

// ExtractField extracts one scalar field of every element: s >> g.field.
func ExtractField[T any, V dstream.Scalar](s *IStream, c *Collection[T], ptr func(*T) *V) error {
	return dstream.ExtractField(s, c, ptr)
}

// InsertFloat64Slice inserts a variable-sized []float64 field — the
// paper's s << array(p.mass, p.numberOfParticles).
func InsertFloat64Slice[T any](s *OStream, c *Collection[T], get func(*T) []float64) error {
	return dstream.InsertFloat64Slice(s, c, get)
}

// ExtractFloat64Slice extracts a variable-sized []float64 field.
func ExtractFloat64Slice[T any](s *IStream, c *Collection[T], ptr func(*T) *[]float64) error {
	return dstream.ExtractFloat64Slice(s, c, ptr)
}

// InsertInt64Slice inserts a variable-sized []int64 field.
func InsertInt64Slice[T any](s *OStream, c *Collection[T], get func(*T) []int64) error {
	return dstream.InsertInt64Slice(s, c, get)
}

// ExtractInt64Slice extracts a variable-sized []int64 field.
func ExtractInt64Slice[T any](s *IStream, c *Collection[T], ptr func(*T) *[]int64) error {
	return dstream.ExtractInt64Slice(s, c, ptr)
}

// --- Sessions and the dstreamd daemon (ViPIOS-style client/server I/O) ---

type (
	// Session scopes stream opens to one storage domain: the process-local
	// file system (LocalSession) or a tenant namespace inside a running
	// dstreamd daemon (Connect). Open/OpenInput on a session take the same
	// functional options as the package-level calls.
	Session = session.Session
	// DaemonConfig configures a dstreamd instance (tenants, quotas, stripe
	// geometry, I/O ranks, admission windows).
	DaemonConfig = server.Config
	// DaemonTenant is one tenant namespace of a daemon.
	DaemonTenant = server.Tenant
	// Daemon is a running dstreamd instance (see StartDaemon; the dstreamd
	// command wraps it for standalone use).
	Daemon = server.Server
	// DaemonClientConfig tunes a session's connection to a daemon
	// (reconnect budget, session resume token).
	DaemonClientConfig = server.ClientConfig
)

var (
	// Connect opens a session with the dstreamd daemon at addr under the
	// named tenant: Connect(addr, "tenant-a") → *Session.
	Connect = session.Connect
	// ConnectConfig is Connect with explicit client tuning.
	ConnectConfig = session.ConnectConfig
	// LocalSession returns the process-local session (the embedded path).
	LocalSession = session.Local
	// DefaultSession returns the session package-level opens route through.
	DefaultSession = session.Default
	// SetDefaultSession points the package-level Open/OpenInput at a
	// session (nil restores the local one), so an embedded program becomes
	// daemon-backed without touching its open sites.
	SetDefaultSession = session.SetDefault
	// StartDaemon starts a dstreamd daemon in-process (tests, smoke runs);
	// production deployments run the dstreamd command.
	StartDaemon = server.Start

	// ErrQuota reports a write refused for breaching a tenant's byte quota.
	ErrQuota = server.ErrQuota
	// ErrUnknownTenant reports a connect under an unconfigured tenant name.
	ErrUnknownTenant = server.ErrUnknownTenant
	// ErrDaemonBusy reports admission refusal at a tenant's session limit.
	ErrDaemonBusy = server.ErrBusy
)

// --- Replicated-data I/O (paper §4.2) ---

// ReplicatedFile performs I/O on node-replicated local data: node 0 does
// the file I/O; reads are broadcast.
type ReplicatedFile = replicated.File

// OpenReplicated opens a replicated-data file on all nodes.
var OpenReplicated = replicated.Open

// --- Checkpoint manager (the §2 checkpointing task, productized) ---

type (
	// CheckpointManager rotates crash-consistent checkpoints over slots.
	CheckpointManager = ckpt.Manager
	// CheckpointSlot describes one validated checkpoint.
	CheckpointSlot = ckpt.Slot
)

// Checkpoint constructors and queries.
var (
	// NewCheckpointManager creates a rotating checkpoint manager.
	NewCheckpointManager = ckpt.New
	// LatestCheckpoint returns the newest valid checkpoint slot.
	LatestCheckpoint = ckpt.Latest
)

// SaveCheckpoint checkpoints a whole collection under the given epoch.
func SaveCheckpoint[T any, PT dstream.InserterPtr[T]](m *CheckpointManager, epoch uint64, c *Collection[T]) error {
	return ckpt.SaveCollection[T, PT](m, epoch, c)
}

// RestoreCheckpoint restores a collection from the newest valid checkpoint
// and returns its epoch. The collection's distribution (and the machine's
// node count) may differ from the writer's.
func RestoreCheckpoint[T any, PT dstream.ExtractorPtr[T]](n *Node, base string, slots int, c *Collection[T]) (uint64, error) {
	return ckpt.RestoreCollection[T, PT](n, base, slots, c)
}
