# Build/verify entry points. `make check` is the full tier-1 verify:
# vet + the whole suite under the race detector (the machine runs one
# goroutine per simulated node, so -race is load-bearing, not optional).

GO ?= go

.PHONY: build test vet race check bench tables chaos fuzz api-golden bench-twophase bench-planner bench-readahead bench-critpath bench-pipeline chaos-twophase chaos-readahead chaos-tenants chaos-planner chaos-pipeline bench-alloc alloc-check race-pooldebug telemetry-smoke dstreamd-smoke bench-scale bench-scale-full

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet race

# Regenerate the paper's tables (shape-checked against the published data).
tables:
	$(GO) run ./cmd/dstream-bench -all

bench:
	$(GO) test -bench . -benchtime 1x ./internal/bench

# The two-phase vs funnel vs parallel strategy ablation. Emits the grid as
# BENCH_twophase.json and fails if two-phase never beats both classic paths.
bench-twophase:
	$(GO) run ./cmd/dstream-bench -twophase -twophase-json BENCH_twophase.json

# The planner-vs-oracle grid: every cell of the two-phase write ablation
# plus a read workload grid, replayed under each static choice and under
# StrategyAuto's cost-model planner. Emits BENCH_planner.json and fails
# unless Auto is within 10% of the best static choice on ≥90% of the cells
# with byte-identical data in every cell.
bench-planner:
	$(GO) run ./cmd/dstream-bench -planner -planner-json BENCH_planner.json

# The read-ahead prefetch ablation. Emits the grid as BENCH_readahead.json
# and fails unless prefetching lowers the refill stall on at least half the
# cells with byte-identical data.
bench-readahead:
	$(GO) run ./cmd/dstream-bench -readahead -readahead-json BENCH_readahead.json

# The pipeline-vs-file grid: stream-to-stream channels against writing and
# re-reading the same records through the file system. Emits the grid as
# BENCH_pipeline.json and fails unless the pipeline wins at least half the
# cells with the consumed bytes identical to the file path in every cell.
bench-pipeline:
	$(GO) run ./cmd/dstream-bench -pipeline -pipeline-json BENCH_pipeline.json

# The critical-path attribution sweep. Emits the grid as BENCH_critpath.json
# and fails unless every rank's wall time is fully attributed and the
# span-graph stall sums agree with the stall histograms within 5%.
bench-critpath:
	$(GO) run ./cmd/dstream-bench -critpath -critpath-json BENCH_critpath.json

# Start scf-sim with the live telemetry endpoint and scrape /healthz,
# /metrics, /trace and /critpath mid-run, verifying well-formed output.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# The dstreamd self-test: an in-process daemon, concurrent tenant sessions
# through full stream round trips, a quota breach failing cleanly, and a
# per-tenant telemetry scrape.
dstreamd-smoke:
	$(GO) run ./cmd/dstreamd -smoke

# The runtime scale curve: real per-message wall cost of the mailbox rings
# as the simulated machine doubles from 4 ranks up, gated at 1.5x the
# 8-rank cell. `bench-scale` is the CI smoke (4..128, no artifact);
# `bench-scale-full` regenerates the committed 4..1024 BENCH_scale.json.
bench-scale:
	$(GO) run ./cmd/dstream-bench -scale -scale-max 128

bench-scale-full:
	$(GO) run ./cmd/dstream-bench -scale -scale-json BENCH_scale.json

# The allocation benchmark: real allocs/op on the pooled hot paths, emitted
# as BENCH_alloc.json. `make alloc-check` re-measures and fails on a >10%
# regression against the committed BENCH_alloc_baseline.json — the CI gate
# that keeps the hot paths allocation-free.
bench-alloc:
	$(GO) run ./cmd/dstream-bench -alloc -alloc-json BENCH_alloc.json

alloc-check:
	$(GO) run ./cmd/dstream-bench -alloc -alloc-check BENCH_alloc_baseline.json

# The race suite again with pooldebug poisoning on the pool-heavy packages:
# a retained alias written after Put panics at the next Get instead of
# corrupting a record silently.
race-pooldebug:
	$(GO) test -race -tags pooldebug ./internal/bufpool/ ./internal/comm/ ./internal/collective/ ./internal/pfs/ ./internal/dstream/ ./internal/chaos/

# Regenerate the public API surface golden after an intentional API change.
# `make check` diffs the façade against testdata/api_surface.golden.
api-golden:
	$(GO) test . -run TestAPISurface -update

# The chaos oracle: the full SCF write→read pipeline under seeded fault
# schedules. Override the campaign with e.g.
#   make chaos CHAOS_SEED=1000 CHAOS_N=2000
CHAOS_SEED ?= 1
CHAOS_N    ?= 200

chaos:
	$(GO) test ./internal/chaos/ -v -run TestChaos -chaos.seed $(CHAOS_SEED) -chaos.n $(CHAOS_N)

# Same oracle with the two-phase collective strategy on both stream ends.
chaos-twophase:
	$(GO) test ./internal/chaos/ -v -run TestChaosOracleTwoPhase -chaos.seed $(CHAOS_SEED) -chaos.n $(CHAOS_N)

# Same oracle with read-ahead prefetching over a striped, fault-injected store.
chaos-readahead:
	$(GO) test ./internal/chaos/ -v -run TestChaosOracleReadAhead -chaos.seed $(CHAOS_SEED) -chaos.n $(CHAOS_N)

# Same oracle with the cost-model planner active (full-auto streams) and a
# striped store: seeded faults skew the planner's observations mid-stream,
# and every successful seed must show rank-identical plan-decision chains.
chaos-planner:
	$(GO) test ./internal/chaos/ -v -run TestChaosOraclePlanner -chaos.seed $(CHAOS_SEED) -chaos.n $(CHAOS_N)

# The channel oracle: the M→N pipeline under seeded transport faults plus a
# seeded mid-stream consumer stall. Every seed must end with the pipeline's
# consumed bytes identical to the fault-free file path or a clean error —
# never a hang, never corruption.
chaos-pipeline:
	$(GO) test ./internal/chaos/ -v -run TestChaosPipeline -chaos.seed $(CHAOS_SEED) -chaos.n $(CHAOS_N)

# The multi-tenant daemon oracle: ≥3 concurrent tenant programs through one
# dstreamd over fault-injected storage and transports, with every client
# connection severed at seeded moments mid-run. Byte-identity or clean
# error per tenant; hangs and cross-tenant leaks fail.
chaos-tenants:
	$(GO) test ./internal/chaos/ -v -run 'TestTenantChaos|TestTenantsReference' -chaos.seed $(CHAOS_SEED) -chaos.n $(CHAOS_N)

# Short fuzz pass over the wire codec and the schema decoder (the committed
# corpora under testdata/fuzz replay in every plain `go test` run).
fuzz:
	$(GO) test ./internal/enc/ -fuzz FuzzRoundTrip -fuzztime 30s
	$(GO) test ./internal/enc/ -fuzz FuzzReaderNeverPanics -fuzztime 30s
	$(GO) test ./internal/enc/ -fuzz FuzzRecordHeader -fuzztime 30s
	$(GO) test ./internal/dschema/ -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/dschema/ -fuzz FuzzDecodeElement -fuzztime 30s
	$(GO) test ./internal/dschema/ -fuzz FuzzSchemaRoundTrip -fuzztime 30s
	$(GO) test ./internal/plan/ -fuzz FuzzCostModel -fuzztime 30s
	$(GO) test ./internal/plan/ -fuzz FuzzPlannerChain -fuzztime 30s
