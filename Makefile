# Build/verify entry points. `make check` is the full tier-1 verify:
# vet + the whole suite under the race detector (the machine runs one
# goroutine per simulated node, so -race is load-bearing, not optional).

GO ?= go

.PHONY: build test vet race check bench tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet race

# Regenerate the paper's tables (shape-checked against the published data).
tables:
	$(GO) run ./cmd/dstream-bench -all

bench:
	$(GO) test -bench . -benchtime 1x ./internal/bench
