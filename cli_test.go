package pcxxstreams

// End-to-end tests of the command-line tools: each binary is built once
// with the host toolchain and driven through its primary workflow against
// real files, the way a downstream user would run it.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles every cmd/ binary once per test process.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "pcxx-cli-")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir+string(os.PathSeparator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v\n%s", buildErr, buildDir)
	}
	return buildDir
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(buildTools(t), name)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

// TestCLIWorkflow drives the full tool chain: scf-sim produces frames and
// checkpoints on disk; dsdump inspects a frame; streamgen derives the
// Segment schema; ds2json exports the frame with it; scf-sim resumes from
// the checkpoint on a different node count.
func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()

	// 1. Simulate: 20 steps, frame at 10 and 20, checkpoint at 10 and 20.
	out := runTool(t, "scf-sim",
		"-procs", "4", "-segments", "16", "-particles", "6",
		"-steps", "20", "-save-every", "10", "-checkpoint-every", "10",
		"-dir", dir, "-platform", "challenge")
	if !strings.Contains(out, "final state fingerprint:") {
		t.Fatalf("scf-sim output missing fingerprint:\n%s", out)
	}
	fingerprint := out[strings.Index(out, "final state fingerprint:"):]
	frame := filepath.Join(dir, "particles.0020")
	if _, err := os.Stat(frame); err != nil {
		t.Fatalf("frame not written: %v", err)
	}

	// 2. Inspect the frame.
	out = runTool(t, "dsdump", frame)
	if !strings.Contains(out, "d/stream file") || !strings.Contains(out, "CYCLIC(n=16,p=4)") {
		t.Fatalf("dsdump output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "1 record(s), no trailing bytes") {
		t.Fatalf("dsdump did not validate the frame:\n%s", out)
	}

	// 3. Derive the schema from the real source, then export to JSON.
	schema := strings.TrimSpace(runTool(t, "streamgen", "-schema", "Segment", "internal/scf/scf.go"))
	if !strings.HasPrefix(schema, "numberOfParticles:i64,") {
		t.Fatalf("streamgen schema = %q", schema)
	}
	jsonOut := runTool(t, "ds2json", "-schema", schema, frame)
	lines := strings.Split(strings.TrimSpace(jsonOut), "\n")
	if len(lines) != 16 {
		t.Fatalf("ds2json emitted %d lines, want 16", len(lines))
	}
	var first struct {
		Record int            `json:"record"`
		Global int            `json:"global"`
		Fields map[string]any `json:"fields"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("ds2json line not JSON: %v\n%s", err, lines[0])
	}
	if first.Fields["numberOfParticles"] != float64(6) {
		t.Fatalf("exported particle count = %v", first.Fields["numberOfParticles"])
	}

	// 4. Resume on a different node count: with no remaining steps, the
	// fingerprint must match the original run exactly.
	out = runTool(t, "scf-sim",
		"-procs", "6", "-segments", "16", "-particles", "6",
		"-steps", "20", "-save-every", "0", "-checkpoint-every", "10",
		"-dir", dir, "-platform", "challenge", "-resume")
	if !strings.Contains(out, "resumed from checkpoint at step 20") {
		t.Fatalf("resume output:\n%s", out)
	}
	if !strings.Contains(out, fingerprint[:strings.IndexByte(fingerprint, '\n')]) {
		t.Fatalf("resume fingerprint differs:\noriginal %q\nresume output:\n%s", fingerprint, out)
	}
}

// TestCLIBench regenerates one table and the gantt view through the binary.
func TestCLIBench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	out := runTool(t, "dstream-bench", "-table", "4")
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "shape criteria: OK") {
		t.Fatalf("dstream-bench table output:\n%s", out)
	}
	out = runTool(t, "dstream-bench", "-gantt", "-variant", "manual")
	if !strings.Contains(out, "node  0 |") {
		t.Fatalf("gantt output:\n%s", out)
	}
}

// TestCLIStreamgenGenerate runs the generator over a scratch file and
// checks the companion compiles-shaped output lands next to it.
func TestCLIStreamgenGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "types.go")
	if err := os.WriteFile(src, []byte("package p\n\ntype Point struct {\n\tID int64\n\tXs []float64\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	runTool(t, "streamgen", src)
	gen, err := os.ReadFile(filepath.Join(dir, "types_streams.go"))
	if err != nil {
		t.Fatalf("companion not written: %v", err)
	}
	for _, want := range []string{"func (v *Point) StreamInsert", "e.Float64Slice(v.Xs)"} {
		if !strings.Contains(string(gen), want) {
			t.Fatalf("generated code missing %q:\n%s", want, gen)
		}
	}
}
