// Command streamgen is the repository's counterpart of the paper's
// stream-gen tool (§4.2): it analyzes a Go source file and generates the
// StreamInsert/StreamExtract methods (the inserter and extractor operators)
// for its struct types. Fields it cannot handle mechanically — pointers,
// maps, channels, interfaces — become TODO comments for the programmer,
// exactly as stream-gen emitted "comment statements allowing the programmer
// to specify exactly how the pointers should be handled".
//
// Usage:
//
//	streamgen [-types T1,T2] [-o out.go] [-dstream importpath] file.go
//
// With no -o, the generated file is written next to the input as
// <file>_streams.go. Use "-o -" for stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pcxxstreams/internal/streamgen"
)

func main() {
	var (
		types   = flag.String("types", "", "comma-separated struct types to generate for (default: all)")
		out     = flag.String("o", "", `output path ("-" for stdout; default <file>_streams.go)`)
		dstream = flag.String("dstream", "", "import path of the d/stream package (default pcxxstreams/internal/dstream)")
		list    = flag.Bool("list", false, "list the struct types the file defines and exit")
		schema  = flag.String("schema", "", "print the cmd/ds2json schema for this struct type and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: streamgen [-types T1,T2] [-o out.go] [-dstream path] file.go|dir")
		os.Exit(2)
	}
	in := flag.Arg(0)

	if fi, err := os.Stat(in); err == nil && fi.IsDir() {
		// Directory mode: one companion file per source file.
		opts := streamgen.Options{DStreamImport: *dstream}
		if *types != "" {
			for _, t := range strings.Split(*types, ",") {
				if t = strings.TrimSpace(t); t != "" {
					opts.Types = append(opts.Types, t)
				}
			}
		}
		if *list || *out != "" {
			fmt.Fprintln(os.Stderr, "streamgen: -list and -o do not apply in directory mode")
			os.Exit(2)
		}
		written, err := streamgen.GenerateDir(in, opts)
		if err != nil {
			fatal(err)
		}
		for _, w := range written {
			fmt.Fprintf(os.Stderr, "streamgen: wrote %s\n", w)
		}
		return
	}

	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}

	if *list {
		names, err := streamgen.TypeNames(src, in)
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	if *schema != "" {
		out, err := streamgen.SchemaFor(src, in, *schema)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		return
	}

	opts := streamgen.Options{DStreamImport: *dstream}
	if *types != "" {
		for _, t := range strings.Split(*types, ",") {
			if t = strings.TrimSpace(t); t != "" {
				opts.Types = append(opts.Types, t)
			}
		}
	}
	gen, err := streamgen.Generate(src, in, opts)
	if err != nil {
		fatal(err)
	}

	dest := *out
	if dest == "" {
		dest = strings.TrimSuffix(in, ".go") + "_streams.go"
	}
	if dest == "-" {
		os.Stdout.Write(gen)
		return
	}
	if err := os.WriteFile(dest, gen, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "streamgen: wrote %s\n", dest)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamgen:", err)
	os.Exit(1)
}
