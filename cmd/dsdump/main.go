// Command dsdump inspects a d/stream file: the file header, every record's
// distribution descriptor (the §4.1 "paperwork" the library stores so input
// needs nothing from the programmer), and per-element size statistics.
//
// Usage:
//
//	dsdump [-sizes] [-max N] file
package main

import (
	"flag"
	"fmt"
	"os"

	"pcxxstreams/internal/dsinfo"
)

func main() {
	var (
		dumpSizes = flag.Bool("sizes", false, "dump the full per-element size table of every record")
		maxRecs   = flag.Int("max", 0, "print at most N records (0 = all)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dsdump [-sizes] [-max N] file")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	info, err := dsinfo.Parse(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: d/stream file, %d bytes\n", flag.Arg(0), info.Bytes)

	for i := range info.Records {
		if *maxRecs > 0 && i >= *maxRecs {
			fmt.Printf("... %d further record(s) suppressed (-max)\n", len(info.Records)-i)
			break
		}
		rec := &info.Records[i]
		fmt.Printf("\nrecord %d @ %d:\n", rec.Index, rec.Offset)
		fmt.Printf("  arrays interleaved : %d\n", rec.Header.NArrays)
		fmt.Printf("  writer distribution: %v\n", rec.Dist)
		fmt.Printf("  elements           : %d (sizes min %d / max %d / total %d bytes)\n",
			rec.Header.NElems, rec.MinSize(), rec.MaxSize(), rec.TotalBytes())
		fmt.Printf("  data section       : [%d, %d)\n", rec.DataOffset, rec.DataOffset+int64(rec.Header.DataBytes))
		fmt.Printf("  per-node blocks    :")
		for r := 0; r < rec.Dist.NProcs; r++ {
			fmt.Printf(" n%d=%d", r, rec.Dist.LocalCount(r))
		}
		fmt.Println(" elements")
		if *dumpSizes {
			for j, s := range rec.Sizes {
				fmt.Printf("    elem[%d] = %d bytes\n", j, s)
			}
		}
	}
	fmt.Printf("\n%d record(s), no trailing bytes\n", len(info.Records))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsdump:", err)
	os.Exit(1)
}
