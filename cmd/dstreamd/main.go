// Command dstreamd runs the d/stream I/O daemon: a ViPIOS-style server in
// which dedicated I/O ranks own the parallel file system while many
// independent client programs open, append, and read streams over TCP
// through tenant-scoped sessions (see pcxxstreams.Connect).
//
// Usage:
//
//	dstreamd -addr :7030 -tenants "alice:104857600:4,bob"
//	dstreamd -addr :7030 -tenants alice -dir /var/lib/dstreamd
//	dstreamd -smoke                                  # self-test and exit
//
// Each -tenants entry is name[:quotaBytes[:maxSessions]]; zero (or absent)
// means unlimited. With -dir the tenant namespaces persist as flattened
// files under that directory; by default storage is an in-memory stripe.
//
// The -telemetry endpoint serves the daemon's live metrics — every tenant
// labeled on one /metrics page — plus /healthz for probes.
//
// -smoke runs the daemon's self-test: an in-process instance with two
// tenants, concurrent client sessions writing and reading streams
// byte-identically, a quota tenant whose breach must fail cleanly, and a
// telemetry scrape — exiting zero only if all of it holds. CI runs it via
// `make dstreamd-smoke`.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	pcxx "pcxxstreams"
	"pcxxstreams/internal/dsmon"
	"pcxxstreams/internal/scf"
	"pcxxstreams/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", ":7030", "listen address for client sessions")
		tele      = flag.String("telemetry", "", "serve live telemetry (/metrics /healthz /debug/vars) on this address (':0' picks a free port)")
		tenants   = flag.String("tenants", "", "comma-separated tenant specs: name[:quotaBytes[:maxSessions]]")
		dir       = flag.String("dir", "", "back tenant storage with real files under this directory (default: in-memory stripe)")
		stripeK   = flag.Int("stripe-factor", 4, "stripe factor of the default in-memory store")
		stripeU   = flag.Int64("stripe-unit", 64<<10, "stripe unit bytes of the default in-memory store")
		ioRanks   = flag.Int("io-ranks", 0, "dedicated I/O rank goroutines (0 = stripe factor)")
		window    = flag.Int64("window", 4<<20, "per-session write window bytes granted at hello")
		tenWindow = flag.Int64("tenant-window", 0, "per-tenant in-flight admission budget bytes (0 = 2×stripe)")
		grace     = flag.Duration("grace", 30*time.Second, "how long a disconnected session stays resumable")
		smoke     = flag.Bool("smoke", false, "run the self-test against an in-process daemon and exit")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "dstreamd smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("dstreamd smoke: PASS")
		return
	}

	tens, err := parseTenants(*tenants)
	if err != nil {
		fatal(err)
	}
	if len(tens) == 0 {
		fatal(fmt.Errorf("no tenants configured (use -tenants \"name[:quota[:sessions]],…\")"))
	}
	mon := dsmon.New()
	cfg := pcxx.DaemonConfig{
		Tenants:           tens,
		StripeFactor:      *stripeK,
		StripeUnit:        *stripeU,
		IORanks:           *ioRanks,
		WindowBytes:       *window,
		TenantWindowBytes: *tenWindow,
		Grace:             *grace,
		Monitor:           mon,
	}
	if *dir != "" {
		cfg.Factory = pcxx.OSFactory(*dir)
	}
	srv, err := pcxx.StartDaemon(*addr, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dstreamd: serving %d tenant(s) on %s\n", len(tens), srv.Addr())
	var ts *telemetry.Server
	if *tele != "" {
		ts, err = telemetry.Serve(*tele, mon)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dstreamd: telemetry on http://%s/metrics\n", ts.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dstreamd: shutting down")
	if ts != nil {
		ts.Close()
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

// parseTenants decodes "name[:quotaBytes[:maxSessions]],…".
func parseTenants(spec string) ([]pcxx.DaemonTenant, error) {
	var out []pcxx.DaemonTenant
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		parts := strings.Split(field, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("tenant spec %q: want name[:quotaBytes[:maxSessions]]", field)
		}
		t := pcxx.DaemonTenant{Name: parts[0]}
		if len(parts) > 1 && parts[1] != "" {
			q, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad quota %q: %v", t.Name, parts[1], err)
			}
			t.QuotaBytes = q
		}
		if len(parts) > 2 && parts[2] != "" {
			s, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad session limit %q: %v", t.Name, parts[2], err)
			}
			t.MaxSessions = s
		}
		out = append(out, t)
	}
	return out, nil
}

// runSmoke is the CI self-test: daemon + telemetry up, two tenants through
// full stream round-trips concurrently, quota breach fails cleanly, metrics
// and health scrape correctly, everything shuts down.
func runSmoke() error {
	mon := dsmon.New()
	srv, err := pcxx.StartDaemon("127.0.0.1:0", pcxx.DaemonConfig{
		Tenants: []pcxx.DaemonTenant{
			{Name: "smoke-a"},
			{Name: "smoke-b"},
			{Name: "smoke-tiny", QuotaBytes: 4 << 10},
		},
		Monitor: mon,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ts, err := telemetry.Serve("127.0.0.1:0", mon)
	if err != nil {
		return err
	}
	defer ts.Close()

	// Two tenants write and read concurrently, byte-identically, through
	// the same daemon — under the same file name, so any cross-tenant leak
	// breaks the seeded-fill verification.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i, tenant := range []string{"smoke-a", "smoke-b"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := smokeRun(srv.Addr(), tenant, 1000*(i+1)); err != nil {
				errs <- fmt.Errorf("tenant %s: %w", tenant, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}

	// The quota tenant must fail cleanly, and promptly.
	quotaDone := make(chan error, 1)
	go func() { quotaDone <- smokeRun(srv.Addr(), "smoke-tiny", 7) }()
	select {
	case err := <-quotaDone:
		if err == nil {
			return fmt.Errorf("over-quota run succeeded")
		}
	case <-time.After(60 * time.Second):
		return fmt.Errorf("over-quota run hung instead of failing cleanly")
	}

	// Scrape health and per-tenant metrics.
	if body, err := get(ts.Addr(), "/healthz"); err != nil || body != "ok\n" {
		return fmt.Errorf("/healthz = %q, %v", body, err)
	}
	body, err := get(ts.Addr(), "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		`dstreamd_requests_total{tenant="smoke-a"}`,
		`dstreamd_requests_total{tenant="smoke-b"}`,
		`dstreamd_quota_rejects_total{tenant="smoke-tiny"}`,
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("/metrics missing %s", want)
		}
	}

	if err := ts.Close(); err != nil {
		return err
	}
	return srv.Close()
}

// smokeRun drives one tenant session through a full stream write/read with
// seeded data and verifies every element.
func smokeRun(addr, tenant string, seed int) error {
	sess, err := pcxx.Connect(addr, tenant)
	if err != nil {
		return err
	}
	defer sess.Close()
	const (
		nprocs = 4
		nelems = 32
	)
	_, err = sess.Run(pcxx.Config{NProcs: nprocs, Profile: pcxx.Paragon()}, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(nelems, nprocs, pcxx.Cyclic, 0)
		if err != nil {
			return err
		}
		c, err := pcxx.NewCollection[scf.Segment](n, d)
		if err != nil {
			return err
		}
		c.Apply(func(g int, s *scf.Segment) { s.Fill(g+seed, scf.DefaultParticles) })
		s, err := sess.Open(n, d, "data", pcxx.WithStrategy(pcxx.StrategyTwoPhase))
		if err != nil {
			return err
		}
		if err := pcxx.Insert[scf.Segment](s, c); err != nil {
			return err
		}
		if err := s.Write(); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}

		in, err := sess.OpenInput(n, d, "data")
		if err != nil {
			return err
		}
		defer in.Close()
		got, err := pcxx.NewCollection[scf.Segment](n, d)
		if err != nil {
			return err
		}
		if err := in.Read(); err != nil {
			return err
		}
		if err := pcxx.Extract[scf.Segment](in, got); err != nil {
			return err
		}
		var mismatch error
		got.Apply(func(g int, have *scf.Segment) {
			var want scf.Segment
			want.Fill(g+seed, scf.DefaultParticles)
			if !have.Equal(&want) && mismatch == nil {
				mismatch = fmt.Errorf("element %d differs from its seeded fill", g)
			}
		})
		return mismatch
	})
	return err
}

func get(addr, path string) (string, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %d", path, resp.StatusCode)
	}
	return string(body), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dstreamd:", err)
	os.Exit(1)
}
