// Command scf-sim is a complete miniature of the application the paper's
// benchmark was carved from: the Self Consistent Field N-body code [12][9],
// with the I/O done through pC++/streams. It runs the particle dynamics on
// a simulated multicomputer, periodically saves the particle data for later
// analysis (the SCF code's "output only" pattern, §4.3), checkpoints
// through the crash-consistent manager, and can resume a previous run —
// on a different processor count.
//
// Usage:
//
//	scf-sim -procs 8 -segments 256 -steps 50 -save-every 10 -dir /tmp/scf
//	scf-sim -procs 4 -dir /tmp/scf -resume           # continue the same run
//	dsdump /tmp/scf/particles.0042                    # inspect a frame
package main

import (
	"flag"
	"fmt"
	"os"

	pcxx "pcxxstreams"
	"pcxxstreams/internal/scf"
)

func main() {
	var (
		procs     = flag.Int("procs", 8, "number of simulated compute nodes")
		segments  = flag.Int("segments", 256, "number of particle segments")
		particles = flag.Int("particles", scf.DefaultParticles, "particles per segment")
		steps     = flag.Int("steps", 50, "total dynamics steps")
		saveEvery = flag.Int("save-every", 10, "emit a particle frame every N steps (0 = never)")
		ckEvery   = flag.Int("checkpoint-every", 25, "checkpoint every N steps (0 = never)")
		ckSlots   = flag.Int("checkpoint-slots", 2, "rotating checkpoint slots")
		dt        = flag.Float64("dt", 0.01, "time step")
		dir       = flag.String("dir", "", "directory for output files (default: in-memory only)")
		resume    = flag.Bool("resume", false, "resume from the newest valid checkpoint in -dir")
		platform  = flag.String("platform", "paragon", "cost profile: paragon|challenge|cm5")
		dist      = flag.String("dist", "cyclic", "distribution: block|cyclic")
		metrics   = flag.Bool("metrics", false, "print the run's dsmon metrics (Prometheus text) to stderr")
		metricsJS = flag.String("metrics-json", "", "write the run's dsmon metrics snapshot (JSON) to this file")
		traceOut  = flag.String("trace", "", "write a Chrome trace (JSON) of the run to this file")
		critpathF = flag.Bool("critpath", false, "print the run's critical-path attribution report to stderr")
		serve     = flag.String("serve", "", "serve live telemetry (/metrics /trace /critpath /healthz) on this address for the run's duration (':0' picks a free port)")
	)
	flag.Parse()

	prof, ok := pcxx.ProfileByName(*platform)
	if !ok {
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}
	var mode pcxx.Mode
	switch *dist {
	case "block":
		mode = pcxx.Block
	case "cyclic":
		mode = pcxx.Cyclic
	default:
		fatal(fmt.Errorf("unknown distribution %q", *dist))
	}
	var fs *pcxx.FileSystem
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		fs = pcxx.NewFileSystem(prof, pcxx.OSFactory(*dir))
	} else {
		fs = pcxx.NewMemFS(prof)
	}

	var mon *pcxx.Monitor
	if *metrics || *metricsJS != "" || *traceOut != "" || *critpathF || *serve != "" {
		if *traceOut != "" || *critpathF || *serve != "" {
			// The live endpoint and the critical-path analyzer both need the
			// span graph, so serving implies tracing.
			mon = pcxx.NewTracingMonitor()
		} else {
			mon = pcxx.NewMonitor()
		}
	}

	cfg := pcxx.Config{
		NProcs: *procs, Profile: prof, FS: fs, Monitor: mon,
		TelemetryAddr: *serve,
		OnTelemetry: func(addr string) {
			// Parsed by `make telemetry-smoke` — keep the format stable.
			fmt.Printf("telemetry: http://%s\n", addr)
		},
	}
	res, err := pcxx.Run(cfg, func(n *pcxx.Node) error {
		d, err := pcxx.NewDistribution(*segments, *procs, mode, 0)
		if err != nil {
			return err
		}
		g, err := pcxx.NewCollection[scf.Segment](n, d)
		if err != nil {
			return err
		}

		startStep := 0
		if *resume {
			epoch, err := pcxx.RestoreCheckpoint[scf.Segment](n, "scf.ck", *ckSlots, g)
			if err != nil {
				return fmt.Errorf("resume: %w", err)
			}
			startStep = int(epoch)
			if n.Rank() == 0 {
				fmt.Printf("resumed from checkpoint at step %d on %d nodes\n", startStep, *procs)
			}
		} else {
			g.Apply(func(gi int, s *scf.Segment) { s.Fill(gi, *particles) })
		}

		var mgr *pcxx.CheckpointManager
		if *ckEvery > 0 {
			if mgr, err = pcxx.NewCheckpointManager(n, "scf.ck", *ckSlots); err != nil {
				return err
			}
		}

		for step := startStep + 1; step <= *steps; step++ {
			g.Apply(func(_ int, s *scf.Segment) { s.Step(*dt) })

			if *saveEvery > 0 && step%*saveEvery == 0 {
				// The SCF output pattern: save the particle data for later
				// analysis with three lines of stream code.
				name := fmt.Sprintf("particles.%04d", step)
				s, err := pcxx.Open(n, d, name)
				if err != nil {
					return err
				}
				if err := pcxx.Insert[scf.Segment](s, g); err != nil {
					return err
				}
				if err := s.Write(); err != nil {
					return err
				}
				if err := s.Close(); err != nil {
					return err
				}
				if n.Rank() == 0 {
					fmt.Printf("step %4d: frame %s written (%d segments)\n", step, name, *segments)
				}
			}
			if mgr != nil && step%*ckEvery == 0 {
				if err := pcxx.SaveCheckpoint[scf.Segment](mgr, uint64(step), g); err != nil {
					return err
				}
				if n.Rank() == 0 {
					fmt.Printf("step %4d: checkpoint (epoch %d)\n", step, step)
				}
			}
		}

		// Final fingerprint for reproducibility checks across runs.
		local := 0.0
		g.Apply(func(_ int, s *scf.Segment) { local += s.Checksum() })
		total, err := n.Comm().Allreduce(local, 0)
		if err != nil {
			return err
		}
		if n.Rank() == 0 {
			fmt.Printf("final state fingerprint: %.9f\n", total)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated %d nodes on %s: %.3f virtual seconds (I/O included)\n",
		*procs, prof.Name, res.Elapsed)
	if *dir != "" {
		fmt.Printf("output files in %s — inspect frames with: go run ./cmd/dsdump %s/particles.NNNN\n", *dir, *dir)
	}
	if *metrics {
		if err := mon.WritePrometheus(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if *metricsJS != "" {
		f, err := os.Create(*metricsJS)
		if err != nil {
			fatal(err)
		}
		if err := mon.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsJS)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := mon.WriteChromeJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s — open in chrome://tracing\n", *traceOut)
	}
	if *critpathF {
		if err := pcxx.AnalyzeCritPath(mon.Recorder()).WriteText(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scf-sim:", err)
	os.Exit(1)
}
