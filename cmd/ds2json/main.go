// Command ds2json exports a d/stream file to JSON lines, one object per
// element, given the payload schema the writing application used — the §2
// tool-communication task for consumers that speak JSON rather than Go.
//
// The schema transliterates the element type's StreamInsert body (see
// internal/dschema). For the SCF Segment, for example:
//
//	ds2json -schema 'n:i64,x:f64[],y:f64[],z:f64[],vx:f64[],vy:f64[],vz:f64[],mass:f64[]' scf.ck.0
//
// Each output line is {"record":R,"global":G,"fields":{...}}. Elements
// appear in file (node-block) order; the "global" index comes from the
// distribution descriptor stored in the record.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pcxxstreams/internal/dschema"
	"pcxxstreams/internal/dsinfo"
)

func main() {
	var (
		schemaStr = flag.String("schema", "", "payload schema (required); see internal/dschema")
		record    = flag.Int("record", -1, "export only this record (default: all)")
	)
	flag.Parse()
	if flag.NArg() != 1 || *schemaStr == "" {
		fmt.Fprintln(os.Stderr, "usage: ds2json -schema 'name:type,...;...' file")
		os.Exit(2)
	}
	schema, err := dschema.Parse(*schemaStr)
	if err != nil {
		fatal(err)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	info, err := dsinfo.Parse(data)
	if err != nil {
		fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	type line struct {
		Record int            `json:"record"`
		Global int            `json:"global"`
		Fields map[string]any `json:"fields"`
	}

	for ri := range info.Records {
		rec := &info.Records[ri]
		if *record >= 0 && rec.Index != *record {
			continue
		}
		if int(rec.Header.NArrays) != schema.NArrays() {
			fatal(fmt.Errorf("record %d has %d interleaved arrays but the schema describes %d",
				rec.Index, rec.Header.NArrays, schema.NArrays()))
		}
		// Map file position → global index through the stored distribution.
		pos := 0
		for rank := 0; rank < rec.Dist.NProcs; rank++ {
			for local := 0; local < rec.Dist.LocalCount(rank); local++ {
				off, n, err := rec.ElementRange(pos)
				if err != nil {
					fatal(err)
				}
				fields, err := schema.DecodeElement(data[off : off+int64(n)])
				if err != nil {
					fatal(fmt.Errorf("record %d element %d: %w", rec.Index, pos, err))
				}
				if err := enc.Encode(line{
					Record: rec.Index,
					Global: rec.Dist.GlobalIndex(rank, local),
					Fields: fields,
				}); err != nil {
					fatal(err)
				}
				pos++
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ds2json:", err)
	os.Exit(1)
}
