// Command dstream-bench regenerates the tables of the paper's evaluation
// (PPoPP '95, §4.3, Figure 5) on the simulated platforms and prints them
// side by side with the published numbers, and optionally runs the ablation
// experiments from DESIGN.md.
//
// Usage:
//
//	dstream-bench -all            # regenerate Tables 1-4
//	dstream-bench -table 2        # one table
//	dstream-bench -ablations     # the design-choice ablations
//	dstream-bench -all -verify   # also verify data integrity per cell
//	dstream-bench -twophase      # two-phase vs funnel vs parallel ablation
//	dstream-bench -planner       # StrategyAuto vs the best static choice per cell
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	pcxx "pcxxstreams"
	"pcxxstreams/internal/bench"
)

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate one table (1-4)")
		all         = flag.Bool("all", false, "regenerate every table")
		ablations   = flag.Bool("ablations", false, "run the ablation experiments")
		stats       = flag.Bool("stats", false, "print the per-variant I/O operation profile")
		traceOut    = flag.String("trace", "", "write a Chrome trace (JSON) of one streams run to this file")
		gantt       = flag.Bool("gantt", false, "print an ASCII Gantt of one streams run")
		metrics     = flag.Bool("metrics", false, "print the dsmon metrics of one run (Prometheus text)")
		metricsJS   = flag.String("metrics-json", "", "write the dsmon metrics snapshot (JSON) to this file ('-' for stdout)")
		variant     = flag.String("variant", "streams", "variant for -trace/-gantt/-metrics: unbuffered|manual|streams")
		strategy    = flag.String("strategy", "auto", "stream write strategy for -trace/-gantt/-metrics runs: auto|funnel|parallel|twophase")
		twophase    = flag.Bool("twophase", false, "run the two-phase vs funnel vs parallel strategy ablation")
		twophaseJS  = flag.String("twophase-json", "", "write the two-phase ablation grid (JSON) to this file ('-' for stdout)")
		planner     = flag.Bool("planner", false, "run the planner-vs-oracle grid: StrategyAuto against the best static choice per cell")
		plannerJS   = flag.String("planner-json", "", "write the planner grid (JSON) to this file ('-' for stdout)")
		readahead   = flag.Bool("readahead", false, "run the read-ahead prefetch ablation")
		readaheadJS = flag.String("readahead-json", "", "write the read-ahead ablation grid (JSON) to this file ('-' for stdout)")
		critpathF   = flag.Bool("critpath", false, "run the critical-path attribution sweep over the read-ahead grid")
		critpathJS  = flag.String("critpath-json", "", "write the critical-path sweep (JSON) to this file ('-' for stdout)")
		pipeline    = flag.Bool("pipeline", false, "run the pipeline-vs-file grid: stream-to-stream channels against write-then-read")
		pipelineJS  = flag.String("pipeline-json", "", "write the pipeline grid (JSON) to this file ('-' for stdout)")
		scale       = flag.Bool("scale", false, "run the runtime scale curve (wall-clock per-message cost, 4→1024 ranks)")
		scaleJS     = flag.String("scale-json", "", "write the scale curve (JSON) to this file ('-' for stdout)")
		scaleMax    = flag.Int("scale-max", 1024, "largest rank count of the -scale sweep (CI smokes 128)")
		serve       = flag.String("serve", "", "serve live telemetry (/metrics /trace /critpath /healthz) on this address during the -trace/-gantt/-metrics run, and keep serving after it until Ctrl-C")
		platforms   = flag.Bool("platforms", false, "sweep all platforms incl. the CM-5 (extension)")
		scaling     = flag.Bool("scaling", false, "strong-scaling sweep to 64 nodes with linear vs tree collectives (extension)")
		verify      = flag.Bool("verify", false, "verify data integrity after every input phase")
		check       = flag.Bool("check", true, "fail if a table violates the paper's shape criteria")
		alloc       = flag.Bool("alloc", false, "measure real allocs/op on the pooled hot paths")
		allocJS     = flag.String("alloc-json", "", "write the allocation table (JSON) to this file ('-' for stdout)")
		allocCheck  = flag.String("alloc-check", "", "diff a fresh allocation table against this baseline JSON; fail on >10% regression")
	)
	flag.Parse()
	if !*all && *table == 0 && !*ablations && !*stats && !*platforms && !*scaling &&
		!*twophase && *twophaseJS == "" && !*planner && *plannerJS == "" &&
		!*readahead && *readaheadJS == "" && !*pipeline && *pipelineJS == "" &&
		!*critpathF && *critpathJS == "" && !*scale && *scaleJS == "" && *serve == "" &&
		!*alloc && *allocJS == "" && *allocCheck == "" &&
		*traceOut == "" && !*gantt && !*metrics && *metricsJS == "" {
		*all = true
	}

	if *alloc || *allocJS != "" || *allocCheck != "" {
		cells, err := bench.AllocTable()
		if err != nil {
			fatal(err)
		}
		if *alloc {
			bench.WriteAllocTable(os.Stdout, cells)
			fmt.Println()
		}
		if *allocJS != "" {
			out := os.Stdout
			if *allocJS != "-" {
				f, err := os.Create(*allocJS)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				out = f
			}
			if err := bench.WriteAllocJSON(out, cells); err != nil {
				fatal(err)
			}
		}
		if *allocCheck != "" {
			baseline, err := bench.ReadAllocJSON(*allocCheck)
			if err != nil {
				fatal(err)
			}
			if err := bench.CheckAllocRegression(cells, baseline); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dstream-bench: allocation table within 10%% of %s\n", *allocCheck)
		}
	}

	strat, err := pcxx.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	if *traceOut != "" || *gantt || *metrics || *metricsJS != "" || *serve != "" {
		v := map[string]bench.Variant{
			"unbuffered": bench.Unbuffered, "manual": bench.ManualBuf, "streams": bench.Streams,
		}[*variant]
		// A tracing monitor gives one timeline (io + comm + collective +
		// dstream spans) and the full metric registry from the same run.
		mon := pcxx.NewTracingMonitor()
		rec := mon.Recorder()
		var srv *pcxx.TelemetryServer
		if *serve != "" {
			var err error
			if srv, err = pcxx.ServeTelemetry(*serve, mon); err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "dstream-bench: telemetry: http://%s\n", srv.Addr())
		}
		if _, err := bench.Seconds(bench.Run{
			Profile: pcxx.Paragon(), NProcs: 4, Segments: 256, Variant: v, Monitor: mon,
			StreamOpts: pcxx.StreamOptions{Strategy: strat},
		}); err != nil {
			fatal(err)
		}
		if *gantt {
			fmt.Printf("Timeline of %q on paragon, 4 procs, 256 segments:\n", *variant)
			if err := rec.WriteGantt(os.Stdout, 100); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := rec.WriteChromeJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dstream-bench: wrote %s (%d events) — open in chrome://tracing\n",
				*traceOut, rec.Len())
		}
		if *metrics {
			fmt.Printf("# dsmon metrics of %q on paragon, 4 procs, 256 segments\n", *variant)
			if err := mon.WritePrometheus(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		if *metricsJS != "" {
			out := os.Stdout
			if *metricsJS != "-" {
				f, err := os.Create(*metricsJS)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				out = f
			}
			if err := mon.WriteJSON(out); err != nil {
				fatal(err)
			}
		}
		if srv != nil {
			fmt.Fprintf(os.Stderr, "dstream-bench: run complete; telemetry stays at http://%s — Ctrl-C to exit\n", srv.Addr())
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt)
			<-sig
		}
	}

	if *all || *table != 0 {
		specs := bench.Tables()
		if *table != 0 {
			spec, err := bench.TableByID(*table)
			if err != nil {
				fatal(err)
			}
			specs = []bench.TableSpec{spec}
		}
		for _, spec := range specs {
			res, err := bench.RunTable(spec, *verify)
			if err != nil {
				fatal(err)
			}
			res.Format(os.Stdout)
			if *check {
				if err := res.CheckShape(); err != nil {
					fatal(fmt.Errorf("shape criteria violated: %w", err))
				}
				fmt.Printf("shape criteria: OK (ordering, monotone %%-of-manual%s)\n\n",
					map[bool]string{true: ", paragon cache cliff", false: ""}[spec.Platform == "paragon"])
			}
		}
	}

	if *ablations {
		runAblations()
	}

	if *twophase || *twophaseJS != "" {
		pts, err := bench.TwoPhaseSweep()
		if err != nil {
			fatal(err)
		}
		if *twophase {
			formatTwoPhase(os.Stdout, pts)
		}
		if *twophaseJS != "" {
			out := os.Stdout
			if *twophaseJS != "-" {
				f, err := os.Create(*twophaseJS)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(pts); err != nil {
				fatal(err)
			}
		}
		// The acceptance bar for the strategy: at least one configuration
		// where aggregation beats both classic paths outright.
		wins := 0
		for _, p := range pts {
			if p.TwoPhase < p.Funnel && p.TwoPhase < p.Parallel {
				wins++
			}
		}
		if wins == 0 {
			fatal(fmt.Errorf("two-phase never beat both funnel and parallel — aggregation is not paying for its shuffle"))
		}
		fmt.Fprintf(os.Stderr, "dstream-bench: two-phase wins %d of %d grid cells outright\n", wins, len(pts))
	}

	if *planner || *plannerJS != "" {
		grid, err := bench.PlannerSweep()
		if err != nil {
			fatal(err)
		}
		if *planner {
			formatPlanner(os.Stdout, grid)
		}
		if *plannerJS != "" {
			out := os.Stdout
			if *plannerJS != "-" {
				f, err := os.Create(*plannerJS)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(grid); err != nil {
				fatal(err)
			}
		}
		// The acceptance bar for the cost model: byte identity in every
		// cell, and Auto within 10% of the best static choice on ≥90% of
		// the grid — a planner may mis-rank near-ties, never lose big.
		if err := bench.CheckPlanner(grid, bench.PlannerTolerance, bench.PlannerMinFraction); err != nil {
			fatal(err)
		}
		matched := 0
		for _, p := range grid.Write {
			if p.Matched {
				matched++
			}
		}
		for _, p := range grid.Read {
			if p.Matched {
				matched++
			}
		}
		fmt.Fprintf(os.Stderr, "dstream-bench: planner matched the static oracle on %d of %d grid cells, all byte-identical\n",
			matched, len(grid.Write)+len(grid.Read))
	}

	if *readahead || *readaheadJS != "" {
		pts, err := bench.ReadAheadSweep()
		if err != nil {
			fatal(err)
		}
		if *readahead {
			formatReadAhead(os.Stdout, pts)
		}
		if *readaheadJS != "" {
			out := os.Stdout
			if *readaheadJS != "-" {
				f, err := os.Create(*readaheadJS)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(pts); err != nil {
				fatal(err)
			}
		}
		// The acceptance bar for the pipeline: read-ahead must lower the
		// refill stall on at least half the grid, and never corrupt data.
		wins := 0
		for _, p := range pts {
			if !p.Identical {
				fatal(fmt.Errorf("read-ahead cell %s/%s depth %d delivered wrong bytes", p.Platform, p.Strategy, p.Depth))
			}
			if p.StallAhead < p.StallSync {
				wins++
			}
		}
		if 2*wins < len(pts) {
			fatal(fmt.Errorf("read-ahead lowered the refill stall on only %d of %d grid cells — the prefetch is not overlapping", wins, len(pts)))
		}
		fmt.Fprintf(os.Stderr, "dstream-bench: read-ahead lowers the refill stall on %d of %d grid cells\n", wins, len(pts))
	}

	if *pipeline || *pipelineJS != "" {
		pts, err := bench.PipelineSweep()
		if err != nil {
			fatal(err)
		}
		if *pipeline {
			formatPipeline(os.Stdout, pts)
		}
		if *pipelineJS != "" {
			out := os.Stdout
			if *pipelineJS != "-" {
				f, err := os.Create(*pipelineJS)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(pts); err != nil {
				fatal(err)
			}
		}
		// The acceptance bar for the channel subsystem: byte identity with
		// the file path in every cell, pipeline faster on at least half.
		if err := bench.CheckPipeline(pts); err != nil {
			fatal(err)
		}
		wins := 0
		for _, p := range pts {
			if p.PipelineSeconds < p.FileSeconds {
				wins++
			}
		}
		fmt.Fprintf(os.Stderr, "dstream-bench: pipeline beats write-then-read on %d of %d grid cells, all byte-identical\n",
			wins, len(pts))
	}

	if *critpathF || *critpathJS != "" {
		pts, err := bench.CritPathSweep()
		if err != nil {
			fatal(err)
		}
		if *critpathF {
			formatCritPath(os.Stdout, pts)
		}
		if *critpathJS != "" {
			out := os.Stdout
			if *critpathJS != "-" {
				f, err := os.Create(*critpathJS)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(pts); err != nil {
				fatal(err)
			}
		}
		// The acceptance bars for the analyzer: every rank's wall time is
		// attributed to named categories, and the span-graph stall sums agree
		// with the independently-observed stall histograms within 5%.
		for _, p := range pts {
			if p.NamedFractionMin < 0.9 {
				fatal(fmt.Errorf("critpath cell %s/%s depth %d attributes only %.1f%% of a rank's wall time",
					p.Platform, p.Strategy, p.Depth, 100*p.NamedFractionMin))
			}
			if !p.Pass() {
				fatal(fmt.Errorf("critpath cell %s/%s depth %d: span stalls (refill %.4f, shuffle %.4f) disagree with metric sums (refill %.4f, shuffle %.4f) by >5%%",
					p.Platform, p.Strategy, p.Depth, p.RefillSpan, p.ShuffleSpan, p.RefillMetric, p.ShuffleMetric))
			}
		}
		fmt.Fprintf(os.Stderr, "dstream-bench: critpath attribution complete and metric-consistent on all %d grid cells\n", len(pts))
	}

	if *scale || *scaleJS != "" {
		pts, err := bench.ScaleSweep(*scaleMax)
		if err != nil {
			fatal(err)
		}
		if *scale {
			formatScale(os.Stdout, pts)
		}
		if *scaleJS != "" {
			out := os.Stdout
			if *scaleJS != "-" {
				f, err := os.Create(*scaleJS)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				out = f
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(pts); err != nil {
				fatal(err)
			}
		}
		// The acceptance bar for the mailbox rings: the per-message wall
		// cost must not climb past 1.5x its 8-rank value anywhere on the
		// curve — the signature of a lock convoy or root funnel at scale.
		if err := bench.CheckScaleCurve(pts, 1.5); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dstream-bench: per-message cost within 1.5x of the 8-rank baseline across all %d cells\n", len(pts))
	}

	if *stats {
		if err := bench.OpProfile(os.Stdout, pcxx.Paragon(), 4, 512); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *platforms {
		results, err := bench.RunPlatformSweep(4, 512)
		if err != nil {
			fatal(err)
		}
		bench.FormatPlatformSweep(os.Stdout, results)
	}

	if *scaling {
		prof := pcxx.Challenge()
		procCounts := []int{1, 2, 4, 8, 16, 32, 64}
		pts, err := bench.RunScalingSweep(prof, 2048, procCounts)
		if err != nil {
			fatal(err)
		}
		bench.FormatScalingSweep(os.Stdout, prof, 2048, pts)
	}
}

func runAblations() {
	paragon := pcxx.Paragon()
	fmt.Println("Ablation experiments (virtual seconds, paragon profile unless noted)")
	fmt.Println("---------------------------------------------------------------------")

	sorted, unsorted, err := bench.AblationSortedVsUnsorted(paragon, 4, 512)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("read vs unsortedRead (512 segs, changed distribution):\n")
	fmt.Printf("  sorted read  %8.3f s\n  unsortedRead %8.3f s   (%.1f%% of sorted — §3's communication saving)\n\n",
		sorted, unsorted, 100*unsorted/sorted)

	for _, segs := range []int{64, 8192} {
		funnel, parallel, err := bench.AblationMetadataPath(paragon, 8, segs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metadata path (%d segments, 8 procs): funnel %.3f s, parallel %.3f s → %s wins\n",
			segs, funnel, parallel, map[bool]string{true: "funnel", false: "parallel"}[funnel <= parallel])
	}
	fmt.Println()

	inter, sep, err := bench.AblationInterleave(paragon, 4, 256)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("interleaving (5 field arrays, 256 segs): one record %.3f s, five records %.3f s\n\n", inter, sep)

	fmt.Println("flush granularity (512 segs total):")
	for _, records := range []int{1, 4, 16} {
		secs, err := bench.AblationFlushGranularity(paragon, 4, 512, records)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %2d flush(es): %8.3f s\n", records, secs)
	}
	fmt.Println()

	same, changed, err := bench.AblationRedistribute(paragon, 512)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("restart (512 segs): same layout %.3f s, changed procs+distribution %.3f s (two-phase read cost)\n\n",
		same, changed)

	syncT, asyncT, err := bench.AblationAsyncOverlap(paragon, 4, 512, 4, 0.5)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("async write-behind (4 rounds of 0.5 s compute + checkpoint): sync %.3f s, async %.3f s (overlap saves %.3f s)\n\n",
		syncT, asyncT, syncT-asyncT)

	chanS, tcpS, err := bench.AblationTransport(pcxx.Challenge(), 4, 128)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("transport (challenge profile): chan %.6f vs tcp %.6f virtual s — identical=%v\n",
		chanS, tcpS, chanS == tcpS)
}

func formatTwoPhase(w *os.File, pts []bench.StrategyPoint) {
	fmt.Fprintln(w, "Two-phase collective buffering ablation (virtual seconds, SCF write+read)")
	fmt.Fprintln(w, "--------------------------------------------------------------------------")
	fmt.Fprintf(w, "%-10s %6s %8s %9s %7s %10s %10s %10s   %s\n",
		"platform", "procs", "segments", "particles", "stripe", "funnel", "parallel", "twophase", "winner")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %6d %8d %9d %7d %10.4f %10.4f %10.4f   %s\n",
			p.Platform, p.NProcs, p.Segments, p.Particles, p.StripeFactor,
			p.Funnel, p.Parallel, p.TwoPhase, p.Winner)
	}
	fmt.Fprintln(w)
}

func formatPlanner(w *os.File, g bench.PlannerGrid) {
	fmt.Fprintln(w, "Planner-vs-oracle grid: StrategyAuto against the best static choice per cell")
	fmt.Fprintln(w, "-----------------------------------------------------------------------------")
	fmt.Fprintf(w, "%-10s %6s %9s %7s %10s %10s %-9s %-9s %7s %5s\n",
		"platform", "procs", "particles", "stripe", "auto", "best", "oracle", "pick", "ratio", "ok")
	for _, p := range g.Write {
		fmt.Fprintf(w, "%-10s %6d %9d %7d %10.4f %10.4f %-9s %-9s %7.3f %5v\n",
			p.Platform, p.NProcs, p.Particles, p.StripeFactor,
			p.Auto, p.Best, p.BestStrategy, p.AutoPick, p.AutoOverBest, p.Matched)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %9s %9s %10s %10s %-15s %7s %5s\n",
		"platform", "particles", "compute", "auto", "best", "oracle", "ratio", "ok")
	for _, p := range g.Read {
		fmt.Fprintf(w, "%-10s %9d %9.3f %10.4f %10.4f %-15s %7.3f %5v\n",
			p.Platform, p.Particles, p.ComputePerRecord,
			p.Auto, p.Best, p.BestChoice, p.AutoOverBest, p.Matched)
	}
	fmt.Fprintln(w)
}

func formatCritPath(w *os.File, pts []bench.CritPathPoint) {
	fmt.Fprintln(w, "Critical-path attribution sweep (virtual seconds, SCF write+read pipeline)")
	fmt.Fprintln(w, "--------------------------------------------------------------------------")
	fmt.Fprintf(w, "%-10s %-9s %5s %9s %6s %6s %8s %12s %12s %12s\n",
		"platform", "strategy", "depth", "makespan", "spans", "flows", "named%", "refill", "shuffle", "pfs wait")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %-9s %5d %9.4f %6d %6d %7.1f%% %12.4f %12.4f %12.4f\n",
			p.Platform, p.Strategy, p.Depth, p.Makespan, p.Spans, p.Flows,
			100*p.NamedFractionMin, p.RefillSpan, p.ShuffleSpan, p.Categories["pfs wait"])
	}
	fmt.Fprintln(w)
}

func formatReadAhead(w *os.File, pts []bench.ReadAheadPoint) {
	fmt.Fprintln(w, "Read-ahead prefetch ablation (summed refill stall, virtual seconds, SCF input)")
	fmt.Fprintln(w, "------------------------------------------------------------------------------")
	fmt.Fprintf(w, "%-10s %-9s %5s %6s %8s %8s %12s %12s %6s\n",
		"platform", "strategy", "depth", "procs", "records", "stripe", "stall(sync)", "stall(ahead)", "hits")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %-9s %5d %6d %8d %8d %12.4f %12.4f %6d\n",
			p.Platform, p.Strategy, p.Depth, p.NProcs, p.Records, p.StripeFactor,
			p.StallSync, p.StallAhead, p.PrefetchHits)
	}
	fmt.Fprintln(w)
}

func formatPipeline(w *os.File, pts []bench.PipelinePoint) {
	fmt.Fprintln(w, "Pipeline-vs-file grid (virtual seconds, stream-to-stream channel against write-then-read)")
	fmt.Fprintln(w, "------------------------------------------------------------------------------------------")
	fmt.Fprintf(w, "%-10s %5s %5s %6s %9s %8s %9s %10s %10s %8s %6s\n",
		"platform", "prod", "cons", "elems", "elem B", "records", "compute", "pipeline", "file", "speedup", "bytes")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %5d %5d %6d %9d %8d %9.3f %10.4f %10.4f %7.2fx %6v\n",
			p.Platform, p.Producers, p.Consumers, p.Elems, p.ElemBytes, p.Records,
			p.ComputePerRecord, p.PipelineSeconds, p.FileSeconds, p.Speedup, p.BytesMatch)
	}
	fmt.Fprintln(w)
}

func formatScale(w *os.File, pts []bench.ScalePoint) {
	fmt.Fprintln(w, "Runtime scale curve (wall-clock per-message cost, neighbor train + sharded collectives)")
	fmt.Fprintln(w, "---------------------------------------------------------------------------------------")
	fmt.Fprintf(w, "%6s %9s %10s %10s %10s %8s %8s %8s\n",
		"nprocs", "messages", "wall (s)", "µs/msg", "ringputs", "spills", "stalls", "parks")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %9d %10.4f %10.3f %10d %8d %8d %8d\n",
			p.NProcs, p.Messages, p.WallSeconds, p.PerMsgMicros,
			p.RingPuts, p.Spills, p.FullStalls, p.ConsumerParks)
	}
	fmt.Fprintln(w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dstream-bench:", err)
	os.Exit(1)
}
