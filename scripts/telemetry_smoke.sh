#!/bin/sh
# Smoke-test the live telemetry endpoint: start scf-sim with -serve on a
# free port, hit every endpoint mid-run, and verify the responses are
# well-formed. Exercised by `make telemetry-smoke`.
set -eu

workdir=$(mktemp -d)
trap 'kill $pid 2>/dev/null || true; rm -rf "$workdir"' EXIT INT TERM

go build -o "$workdir/scf-sim" ./cmd/scf-sim

# A workload long enough in real time (~5 s) to scrape mid-run.
"$workdir/scf-sim" -procs 4 -segments 256 -steps 3000 -save-every 1 \
    -checkpoint-every 0 -serve 127.0.0.1:0 >"$workdir/run.log" 2>&1 &
pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's#^telemetry: http://##p' "$workdir/run.log" | head -1)
    [ -n "$addr" ] && break
    kill -0 $pid 2>/dev/null || { echo "telemetry-smoke: scf-sim exited before serving"; cat "$workdir/run.log"; exit 1; }
    i=$((i + 1))
    sleep 0.1
done
[ -n "$addr" ] || { echo "telemetry-smoke: no telemetry address in run log"; exit 1; }
echo "telemetry-smoke: scraping http://$addr mid-run"

fail() { echo "telemetry-smoke: $1"; exit 1; }

[ "$(curl -sf "http://$addr/healthz")" = "ok" ] || fail "/healthz did not answer ok"

curl -sf "http://$addr/metrics" >"$workdir/metrics" || fail "/metrics failed"
grep -q '^# TYPE ' "$workdir/metrics" || fail "/metrics has no TYPE lines"
grep -q '^comm_messages_sent_total' "$workdir/metrics" || fail "/metrics is missing comm counters"

curl -sf "http://$addr/critpath" >"$workdir/critpath" || fail "/critpath failed"
grep -q '^critical-path analysis:' "$workdir/critpath" || fail "/critpath is not a report"

curl -sf "http://$addr/critpath?format=json" | go run ./scripts/jsoncheck "makespan" ||
    fail "/critpath?format=json is not valid JSON with a makespan"

curl -sf "http://$addr/trace" | go run ./scripts/jsoncheck "traceEvents" ||
    fail "/trace is not valid Chrome-trace JSON"

curl -sf "http://$addr/debug/vars" | go run ./scripts/jsoncheck "goroutines" ||
    fail "/debug/vars is not valid JSON"

kill $pid 2>/dev/null || true
wait $pid 2>/dev/null || true
echo "telemetry-smoke: all endpoints well-formed"
