// Command jsoncheck verifies stdin is a JSON object containing every key
// named on the command line. A dependency-free `jq -e 'has(...)'` for the
// telemetry smoke test.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	var obj map[string]json.RawMessage
	if err := json.NewDecoder(os.Stdin).Decode(&obj); err != nil {
		fmt.Fprintln(os.Stderr, "jsoncheck: invalid JSON:", err)
		os.Exit(1)
	}
	for _, key := range os.Args[1:] {
		if _, ok := obj[key]; !ok {
			fmt.Fprintf(os.Stderr, "jsoncheck: missing key %q\n", key)
			os.Exit(1)
		}
	}
}
